// The parcelport *header message* format shared by the MPI and LCI
// parcelports (paper §3.1/§3.2): per HPX message, one protocol message
// carrying the metadata the receiver needs — the base tag for follow-up
// messages, the non-zero-copy chunk size, and the existence/size of the
// transmission chunk — plus optional piggybacked transmission and
// non-zero-copy chunks when they fit under the maximum header size (set to
// the zero-copy serialization threshold; 512 bytes fixed in the "original"
// MPI parcelport variant).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "amt/message.hpp"
#include "common/crc32.hpp"
#include "common/integrity.hpp"

namespace amt {

struct WireHeader {
  std::uint32_t tag = 0;           // base tag; follow-up i uses tag + i
  std::uint16_t num_zchunks = 0;
  std::uint8_t piggy_main = 0;     // non-zero-copy chunk rides in the header
  std::uint8_t piggy_tchunk = 0;   // transmission chunk rides in the header
  std::uint64_t main_size = 0;
  /// Per-destination-channel generation number: each sender stamps headers
  /// to one peer with consecutive values. Delivery may reorder (multi-rail)
  /// so receivers only use it to detect duplicated headers — a duplicate
  /// would double-deliver a parcel, which is an integrity failure. 32 bits
  /// wide so the stale-duplicate horizon below is unambiguous over any
  /// realistic flood length (a 16-bit counter aliased a 2^16-delayed
  /// duplicate onto a small forward delta).
  std::uint32_t seq = 0;
  /// CRC-32 over the entire encoded header message (this field as zero),
  /// verified by decode_header — corruption fail-fasts rather than
  /// deserializing garbage.
  std::uint32_t crc = 0;
};
static_assert(sizeof(WireHeader) == 24);

/// Tracks recently seen per-source header generation numbers; accept()
/// returns false for a duplicate. Reordering-tolerant: arrivals up to
/// kStaleHorizon generations behind the newest but outside the exact 64-wide
/// bitmap are presumed legitimate stragglers; anything older than the
/// horizon is an epoch-stale duplicate and is rejected. With 32-bit
/// sequence numbers the horizon test cannot alias across a counter wrap
/// within any reachable flood length.
class HeaderSeqTracker {
 public:
  /// Arrivals this far (or further) behind the newest seq are rejected as
  /// stale duplicates rather than presumed stragglers. Far above any
  /// plausible in-flight reordering depth, far below the wrap distance.
  static constexpr std::uint32_t kStaleHorizon = 1u << 15;

  bool accept(std::uint32_t seq) {
    const std::uint32_t forward = seq - highest_;  // modular distance ahead
    if (forward != 0 && forward < 0x80000000u) {
      mask_ = forward >= 64 ? 0 : mask_ << forward;
      mask_ |= 1ull;
      highest_ = seq;
      return true;
    }
    const std::uint32_t back = highest_ - seq;  // modular distance behind
    if (back >= kStaleHorizon) return false;  // epoch-stale duplicate
    if (back >= 64) return true;              // straggler beyond the bitmap
    const std::uint64_t bit = 1ull << back;
    if ((mask_ & bit) != 0) return false;
    mask_ |= bit;
    return true;
  }

 private:
  std::uint32_t highest_ = 0xFFFFFFFFu;  // so the first seq (0) is "newer"
  std::uint64_t mask_ = 0;               // bit i: (highest_ - i) seen
};

/// How a message will be split into header + follow-ups.
struct HeaderPlan {
  bool piggy_main = false;
  bool piggy_tchunk = false;

  /// Follow-up message order (paper §3.1): non-zero-copy chunk (unless
  /// piggybacked), transmission chunk (if present and not piggybacked),
  /// then one message per zero-copy chunk.
  std::size_t num_followups(const OutMessage& msg) const {
    std::size_t n = msg.zchunks.size();
    if (!piggy_main) ++n;
    if (msg.has_zchunks() && !piggy_tchunk) ++n;
    return n;
  }

  /// Improved-parcelport policy: dynamic header buffer up to `max_header`
  /// bytes, piggybacking both chunks when possible, else just the
  /// transmission chunk.
  static HeaderPlan decide(const OutMessage& msg, std::size_t max_header) {
    const std::size_t tchunk_size =
        msg.has_zchunks() ? msg.zchunks.size() * sizeof(std::uint64_t) : 0;
    HeaderPlan plan;
    if (sizeof(WireHeader) + tchunk_size + msg.main_chunk.size() <=
        max_header) {
      plan.piggy_main = true;
      plan.piggy_tchunk = msg.has_zchunks();
    } else if (msg.has_zchunks() &&
               sizeof(WireHeader) + tchunk_size <= max_header) {
      plan.piggy_tchunk = true;
    }
    return plan;
  }

  /// Original-parcelport policy (paper §3.1 "the original version"): fixed
  /// 512-byte header that can only piggyback the non-zero-copy chunk.
  static HeaderPlan decide_original(const OutMessage& msg,
                                    std::size_t max_header = 512) {
    HeaderPlan plan;
    plan.piggy_main =
        sizeof(WireHeader) + msg.main_chunk.size() <= max_header;
    return plan;
  }
};

/// Exact wire size of the header message under `plan`.
inline std::size_t encoded_header_size(const OutMessage& msg,
                                       const HeaderPlan& plan) {
  std::size_t size = sizeof(WireHeader);
  if (plan.piggy_tchunk) size += msg.zchunks.size() * sizeof(std::uint64_t);
  if (plan.piggy_main) size += msg.main_chunk.size();
  return size;
}

/// Serializes header fields (+ piggybacked chunks) into `out`, which must
/// have capacity >= encoded_header_size(). Returns the bytes written. `tag`
/// is the follow-up base tag. Used directly by the LCI parcelport to
/// assemble the header in an LCI packet buffer without an extra copy.
inline std::size_t encode_header_to(const OutMessage& msg,
                                    const HeaderPlan& plan, std::uint32_t tag,
                                    std::uint32_t seq, std::byte* out,
                                    std::size_t capacity) {
  WireHeader header;
  header.tag = tag;
  assert(msg.zchunks.size() < 65536);  // num_zchunks is u16 on the wire
  header.num_zchunks = static_cast<std::uint16_t>(msg.zchunks.size());
  header.main_size = msg.main_chunk.size();
  header.piggy_main = plan.piggy_main ? 1 : 0;
  header.piggy_tchunk = plan.piggy_tchunk ? 1 : 0;
  header.seq = seq;
  header.crc = 0;

  const std::size_t total = encoded_header_size(msg, plan);
  assert(total <= capacity);
  (void)capacity;
  std::memcpy(out, &header, sizeof(header));
  std::size_t offset = sizeof(header);
  if (plan.piggy_tchunk) {
    // Encode the transmission chunk in place: no temporary vector on the
    // piggybacked (eager) path, which must stay allocation-free.
    for (const ZChunk& chunk : msg.zchunks) {
      const std::uint64_t size = chunk.size;
      std::memcpy(out + offset, &size, sizeof(size));
      offset += sizeof(size);
    }
  }
  if (plan.piggy_main) {
    std::memcpy(out + offset, msg.main_chunk.data(), msg.main_chunk.size());
  }
  // Checksum the full encoded message (crc field as zero) and patch it in.
  const std::uint32_t crc = common::crc32(out, total);
  std::memcpy(out + offsetof(WireHeader, crc), &crc, sizeof(crc));
  return total;
}

/// Convenience: encode into a freshly sized vector (MPI parcelport path).
inline void encode_header(const OutMessage& msg, const HeaderPlan& plan,
                          std::uint32_t tag, std::uint32_t seq,
                          std::vector<std::byte>& out) {
  out.resize(encoded_header_size(msg, plan));
  encode_header_to(msg, plan, tag, seq, out.data(), out.size());
}

// ---------------------------------------------------------------------------
// Whole-parcel frame (the small-parcel fast path, modeled on hpx5's
// put-with-completion): when an entire HPX message fits under the eager
// threshold, the sender packs header + transmission-chunk sizes + every
// chunk payload into ONE self-contained frame and the receiver dispatches it
// straight from a handler completion — no follow-up tags, no
// ReceiverConnection. Same integrity story as the header message: CRC-32
// over the whole frame plus the per-channel sequence number for duplicate
// detection under fault injection.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kWholeParcelMagic = 0xFA57CA11u;

struct WholeParcelHeader {
  std::uint32_t magic = kWholeParcelMagic;  // frame-kind guard
  std::uint32_t num_zchunks = 0;
  std::uint64_t main_size = 0;
  /// Same per-destination-channel generation counter as WireHeader::seq
  /// (fast-path, batch, and header frames share one sequence space per
  /// channel).
  std::uint32_t seq = 0;
  /// CRC-32 over the entire encoded frame (this field as zero).
  std::uint32_t crc = 0;
};
static_assert(sizeof(WholeParcelHeader) == 24);

/// Frame layout: [header][zchunk sizes: u64 x num_zchunks][main][z0][z1]...
inline std::size_t whole_parcel_frame_size(const OutMessage& msg) {
  std::size_t size = sizeof(WholeParcelHeader) +
                     msg.zchunks.size() * sizeof(std::uint64_t) +
                     msg.main_chunk.size();
  for (const ZChunk& chunk : msg.zchunks) size += chunk.size;
  return size;
}

/// Serializes the whole message into `out` (capacity must be >=
/// whole_parcel_frame_size). Returns the bytes written. Allocation-free:
/// the LCI parcelport encodes directly into a pool packet.
inline std::size_t encode_whole_parcel_to(const OutMessage& msg,
                                          std::uint32_t seq, std::byte* out,
                                          std::size_t capacity) {
  WholeParcelHeader header;
  header.num_zchunks = static_cast<std::uint32_t>(msg.zchunks.size());
  header.main_size = msg.main_chunk.size();
  header.seq = seq;
  header.crc = 0;

  const std::size_t total = whole_parcel_frame_size(msg);
  assert(total <= capacity);
  (void)capacity;
  std::memcpy(out, &header, sizeof(header));
  std::size_t offset = sizeof(header);
  for (const ZChunk& chunk : msg.zchunks) {
    const std::uint64_t size = chunk.size;
    std::memcpy(out + offset, &size, sizeof(size));
    offset += sizeof(size);
  }
  std::memcpy(out + offset, msg.main_chunk.data(), msg.main_chunk.size());
  offset += msg.main_chunk.size();
  for (const ZChunk& chunk : msg.zchunks) {
    std::memcpy(out + offset, chunk.data, chunk.size);
    offset += chunk.size;
  }
  const std::uint32_t crc = common::crc32(out, total);
  std::memcpy(out + offsetof(WholeParcelHeader, crc), &crc, sizeof(crc));
  return total;
}

/// Verified view into a whole-parcel frame: field values plus the byte
/// offset of the main chunk. The payload stays in the caller's buffer so
/// the dedup check can run before anything is copied.
struct WholeParcelView {
  WholeParcelHeader fields;
  std::size_t main_offset = 0;
  std::vector<std::uint64_t> zsizes;
};

/// Decodes and *verifies* a whole-parcel frame: magic, CRC over the full
/// frame, and an exact size match (header + sizes + every payload byte must
/// account for the buffer, nothing more, nothing less). Corruption that got
/// past the transport fail-fasts here, like decode_header.
inline WholeParcelView decode_whole_parcel(const std::byte* data,
                                           std::size_t size) {
  WholeParcelView view;
  if (size < sizeof(WholeParcelHeader)) {
    common::integrity_fail("whole-parcel frame truncated: ", size,
                           " bytes < ", sizeof(WholeParcelHeader));
  }
  std::memcpy(&view.fields, data, sizeof(WholeParcelHeader));
  if (view.fields.magic != kWholeParcelMagic) {
    common::integrity_fail("whole-parcel frame bad magic: ",
                           view.fields.magic, " size=", size);
  }
  const std::uint32_t zero = 0;
  std::uint32_t crc = common::crc32(data, offsetof(WholeParcelHeader, crc));
  crc = common::crc32(&zero, sizeof(zero), crc);
  crc = common::crc32(data + sizeof(WholeParcelHeader),
                      size - sizeof(WholeParcelHeader), crc);
  if (crc != view.fields.crc) {
    common::integrity_fail(
        "whole-parcel frame CRC mismatch: stored=", view.fields.crc,
        " computed=", crc, " size=", size, " seq=", view.fields.seq,
        " num_zchunks=", view.fields.num_zchunks,
        " main_size=", view.fields.main_size);
  }
  const std::size_t tchunk_size =
      static_cast<std::size_t>(view.fields.num_zchunks) *
      sizeof(std::uint64_t);
  if (sizeof(WholeParcelHeader) + tchunk_size > size) {
    common::integrity_fail("whole-parcel tchunk overruns frame: ",
                           tchunk_size, " bytes of ", size);
  }
  view.zsizes = parse_tchunk(data + sizeof(WholeParcelHeader), tchunk_size);
  view.main_offset = sizeof(WholeParcelHeader) + tchunk_size;
  std::size_t expected = view.main_offset + view.fields.main_size;
  for (const std::uint64_t zsize : view.zsizes) expected += zsize;
  if (expected != size) {
    common::integrity_fail("whole-parcel frame size mismatch: declared ",
                           expected, " bytes, got ", size);
  }
  return view;
}

/// Moves the payloads out of a decoded frame into an InMessage. The zchunk
/// payloads (rare on this path; most fast-path parcels have none) are
/// copied out first, then the frame vector itself is trimmed in place and
/// becomes the main chunk — the arrival allocation is reused, so the
/// dominant small-parcel case decodes without copying the payload again.
inline InMessage take_whole_parcel_body(std::vector<std::byte>&& frame,
                                        const WholeParcelView& view,
                                        Rank source) {
  InMessage in;
  in.source = source;
  std::size_t offset = view.main_offset + view.fields.main_size;
  in.zchunks.reserve(view.zsizes.size());
  for (const std::uint64_t zsize : view.zsizes) {
    in.zchunks.emplace_back(frame.begin() + offset,
                            frame.begin() + offset + zsize);
    offset += zsize;
  }
  frame.erase(frame.begin(),
              frame.begin() + static_cast<std::ptrdiff_t>(view.main_offset));
  frame.resize(view.fields.main_size);
  in.main_chunk = std::move(frame);
  return in;
}

// ---------------------------------------------------------------------------
// Multi-parcel batch frame (adaptive aggregation): generalizes the
// whole-parcel frame to N sub-threshold parcels coalesced for one
// destination. One frame = one injection, one CRC-32, one per-channel seq —
// the per-message wire overhead the aggregation ablation argues over. A
// count-prefixed length table lets the receiver slice the frame into entries
// without touching the payload bytes; each entry is a self-contained
// [num_zchunks][main_size][zsizes][main][zchunks] record.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kBatchMagic = 0xA66B47C4u;

struct BatchHeader {
  std::uint32_t magic = kBatchMagic;  // frame-kind guard
  std::uint32_t count = 0;            // parcels in this frame (>= 1)
  /// Same per-destination-channel generation counter as WireHeader::seq —
  /// one seq per frame, not per sub-parcel.
  std::uint32_t seq = 0;
  /// CRC-32 over the entire encoded frame (this field as zero).
  std::uint32_t crc = 0;
};
static_assert(sizeof(BatchHeader) == 16);

/// Per-entry fixed overhead: u32 num_zchunks + u64 main_size.
inline constexpr std::size_t kBatchEntryHeaderBytes =
    sizeof(std::uint32_t) + sizeof(std::uint64_t);

/// Smallest possible batch frame: header + one length-table slot + one
/// empty entry. `agg<BYTES>` thresholds below this are rejected at config
/// parse — they could never fit even a zero-payload parcel.
inline constexpr std::size_t kMinAggFrameBytes =
    sizeof(BatchHeader) + sizeof(std::uint32_t) + kBatchEntryHeaderBytes;

/// Encoded size of one entry record inside a batch frame (excludes its
/// length-table slot).
inline std::size_t batch_entry_size(const OutMessage& msg) {
  std::size_t size = kBatchEntryHeaderBytes +
                     msg.zchunks.size() * sizeof(std::uint64_t) +
                     msg.main_chunk.size();
  for (const ZChunk& chunk : msg.zchunks) size += chunk.size;
  return size;
}

/// Frame layout: [BatchHeader][u32 length x count][entry 0]...[entry n-1].
inline std::size_t batch_frame_size(const OutMessage* const* msgs,
                                    std::size_t count) {
  std::size_t size = sizeof(BatchHeader) + count * sizeof(std::uint32_t);
  for (std::size_t i = 0; i < count; ++i) size += batch_entry_size(*msgs[i]);
  return size;
}

/// Serializes `count` messages into one batch frame at `out` (capacity must
/// be >= batch_frame_size). Returns the bytes written. Allocation-free: the
/// LCI parcelport encodes straight into a pool packet at flush time.
inline std::size_t encode_batch_to(const OutMessage* const* msgs,
                                   std::size_t count, std::uint32_t seq,
                                   std::byte* out, std::size_t capacity) {
  assert(count >= 1);
  BatchHeader header;
  header.count = static_cast<std::uint32_t>(count);
  header.seq = seq;
  header.crc = 0;

  const std::size_t total = batch_frame_size(msgs, count);
  assert(total <= capacity);
  (void)capacity;
  std::memcpy(out, &header, sizeof(header));
  std::size_t offset = sizeof(header);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(batch_entry_size(*msgs[i]));
    std::memcpy(out + offset, &len, sizeof(len));
    offset += sizeof(len);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const OutMessage& msg = *msgs[i];
    const std::uint32_t num_zchunks =
        static_cast<std::uint32_t>(msg.zchunks.size());
    const std::uint64_t main_size = msg.main_chunk.size();
    std::memcpy(out + offset, &num_zchunks, sizeof(num_zchunks));
    offset += sizeof(num_zchunks);
    std::memcpy(out + offset, &main_size, sizeof(main_size));
    offset += sizeof(main_size);
    for (const ZChunk& chunk : msg.zchunks) {
      const std::uint64_t size = chunk.size;
      std::memcpy(out + offset, &size, sizeof(size));
      offset += sizeof(size);
    }
    std::memcpy(out + offset, msg.main_chunk.data(), msg.main_chunk.size());
    offset += msg.main_chunk.size();
    for (const ZChunk& chunk : msg.zchunks) {
      std::memcpy(out + offset, chunk.data, chunk.size);
      offset += chunk.size;
    }
  }
  assert(offset == total);
  const std::uint32_t crc = common::crc32(out, total);
  std::memcpy(out + offsetof(BatchHeader, crc), &crc, sizeof(crc));
  return total;
}

/// Verified view into a batch frame: header fields plus the byte offset and
/// length of every entry record. The payload stays in the caller's buffer so
/// the (single) dedup check runs before anything is copied.
struct BatchView {
  BatchHeader fields;
  std::vector<std::size_t> offsets;  // entry i starts at offsets[i]
  std::vector<std::uint32_t> lengths;
};

/// Decodes and *verifies* a batch frame: magic, CRC over the full frame, a
/// non-zero count whose length table fits, and an exact size match (header +
/// table + every declared entry byte must account for the buffer). Anything
/// inconsistent fail-fasts like the other frame kinds.
inline BatchView decode_batch(const std::byte* data, std::size_t size) {
  BatchView view;
  if (size < sizeof(BatchHeader)) {
    common::integrity_fail("batch frame truncated: ", size, " bytes < ",
                           sizeof(BatchHeader));
  }
  std::memcpy(&view.fields, data, sizeof(BatchHeader));
  if (view.fields.magic != kBatchMagic) {
    common::integrity_fail("batch frame bad magic: ", view.fields.magic,
                           " size=", size);
  }
  const std::uint32_t zero = 0;
  std::uint32_t crc = common::crc32(data, offsetof(BatchHeader, crc));
  crc = common::crc32(&zero, sizeof(zero), crc);
  crc = common::crc32(data + sizeof(BatchHeader), size - sizeof(BatchHeader),
                      crc);
  if (crc != view.fields.crc) {
    common::integrity_fail("batch frame CRC mismatch: stored=",
                           view.fields.crc, " computed=", crc, " size=", size,
                           " seq=", view.fields.seq,
                           " count=", view.fields.count);
  }
  const std::size_t count = view.fields.count;
  const std::size_t table_end =
      sizeof(BatchHeader) + count * sizeof(std::uint32_t);
  if (count == 0 || table_end > size) {
    common::integrity_fail("batch frame bad count: ", count, " entries in ",
                           size, " bytes");
  }
  view.lengths.resize(count);
  std::memcpy(view.lengths.data(), data + sizeof(BatchHeader),
              count * sizeof(std::uint32_t));
  view.offsets.resize(count);
  std::size_t offset = table_end;
  for (std::size_t i = 0; i < count; ++i) {
    view.offsets[i] = offset;
    if (view.lengths[i] < kBatchEntryHeaderBytes ||
        view.lengths[i] > size - offset) {
      common::integrity_fail("batch entry ", i, " overruns frame: length ",
                             view.lengths[i], " at ", offset, " of ", size);
    }
    offset += view.lengths[i];
  }
  if (offset != size) {
    common::integrity_fail("batch frame size mismatch: declared ", offset,
                           " bytes, got ", size);
  }
  return view;
}

/// Copies one entry record out of a decoded batch frame into an InMessage.
/// Entries share the arrival buffer, so unlike take_whole_parcel_body the
/// payloads are copied — the batched regime trades that copy for one
/// injection per frame.
inline InMessage take_batch_entry(const std::byte* entry, std::size_t length,
                                  Rank source) {
  std::uint32_t num_zchunks = 0;
  std::uint64_t main_size = 0;
  std::memcpy(&num_zchunks, entry, sizeof(num_zchunks));
  std::memcpy(&main_size, entry + sizeof(num_zchunks), sizeof(main_size));
  std::size_t offset = kBatchEntryHeaderBytes;
  const std::size_t tchunk_size =
      static_cast<std::size_t>(num_zchunks) * sizeof(std::uint64_t);
  if (offset + tchunk_size > length) {
    common::integrity_fail("batch entry tchunk overruns entry: ", tchunk_size,
                           " bytes at ", offset, " of ", length);
  }
  const auto zsizes = parse_tchunk(entry + offset, tchunk_size);
  offset += tchunk_size;
  std::size_t expected = offset + main_size;
  for (const std::uint64_t zsize : zsizes) expected += zsize;
  if (expected != length) {
    common::integrity_fail("batch entry size mismatch: declared ", expected,
                           " bytes, got ", length);
  }
  InMessage in;
  in.source = source;
  in.main_chunk.assign(entry + offset, entry + offset + main_size);
  offset += main_size;
  in.zchunks.reserve(zsizes.size());
  for (const std::uint64_t zsize : zsizes) {
    in.zchunks.emplace_back(entry + offset, entry + offset + zsize);
    offset += zsize;
  }
  return in;
}

/// Leading u32 of a frame riding the fast-path tag: distinguishes
/// whole-parcel frames from batch frames before full decode.
inline std::uint32_t peek_frame_magic(const std::byte* data,
                                      std::size_t size) {
  if (size < sizeof(std::uint32_t)) {
    common::integrity_fail("frame too short for magic: ", size, " bytes");
  }
  std::uint32_t magic = 0;
  std::memcpy(&magic, data, sizeof(magic));
  return magic;
}

/// Decoded header view (piggybacked chunks are copied out).
struct DecodedHeader {
  WireHeader fields;
  std::vector<std::byte> piggy_tchunk;  // valid if fields.piggy_tchunk
  std::vector<std::byte> piggy_main;    // valid if fields.piggy_main
};

/// Decodes and *verifies* a header message. Any inconsistency — CRC
/// mismatch, truncated buffer, size fields pointing past the end — means
/// corrupted wire data reached the decode stage (past all retransmit
/// protection), so this fail-fasts with a diagnostic dump instead of
/// returning garbage. All three parcelports decode through here.
inline DecodedHeader decode_header(const std::byte* data, std::size_t size) {
  DecodedHeader decoded;
  if (size < sizeof(WireHeader)) {
    common::integrity_fail("wire header truncated: ", size, " bytes < ",
                           sizeof(WireHeader));
  }
  std::memcpy(&decoded.fields, data, sizeof(WireHeader));
  // Recompute the CRC with the stored-crc bytes replaced by zero.
  const std::uint32_t zero = 0;
  std::uint32_t crc = common::crc32(data, offsetof(WireHeader, crc));
  crc = common::crc32(&zero, sizeof(zero), crc);
  crc = common::crc32(data + sizeof(WireHeader), size - sizeof(WireHeader),
                      crc);
  if (crc != decoded.fields.crc) {
    common::integrity_fail(
        "wire header CRC mismatch: stored=", decoded.fields.crc,
        " computed=", crc, " size=", size, " tag=", decoded.fields.tag,
        " seq=", decoded.fields.seq,
        " num_zchunks=", decoded.fields.num_zchunks,
        " main_size=", decoded.fields.main_size);
  }
  std::size_t offset = sizeof(WireHeader);
  if (decoded.fields.piggy_tchunk) {
    const std::size_t tchunk_size =
        static_cast<std::size_t>(decoded.fields.num_zchunks) *
        sizeof(std::uint64_t);
    if (offset + tchunk_size > size) {
      common::integrity_fail("wire header tchunk overruns message: ",
                             tchunk_size, " bytes at ", offset, " of ", size);
    }
    decoded.piggy_tchunk.assign(data + offset, data + offset + tchunk_size);
    offset += tchunk_size;
  }
  if (decoded.fields.piggy_main) {
    if (offset + decoded.fields.main_size > size) {
      common::integrity_fail("wire header main chunk overruns message: ",
                             decoded.fields.main_size, " bytes at ", offset,
                             " of ", size);
    }
    decoded.piggy_main.assign(data + offset,
                              data + offset + decoded.fields.main_size);
  }
  return decoded;
}

}  // namespace amt
