#include "amt/action.hpp"

#include <cassert>
#include <mutex>

namespace amt {

ActionRegistry& ActionRegistry::instance() {
  static ActionRegistry registry;
  return registry;
}

ActionRegistry::ActionRegistry() {
  // Slot 0: the response action. It is dispatched specially by the parcel
  // decoder (the promise table knows how to deserialize the result), so the
  // vtable entry is a named placeholder.
  actions_.push_back(ActionVTable{nullptr, "amt::response"});
}

ActionId ActionRegistry::add(const ActionVTable& vtable) {
  std::lock_guard<common::SpinMutex> guard(mutex_);
  actions_.push_back(vtable);
  return static_cast<ActionId>(actions_.size() - 1);
}

ActionVTable ActionRegistry::get(ActionId id) const {
  std::lock_guard<common::SpinMutex> guard(mutex_);
  assert(id < actions_.size());
  return actions_[id];
}

std::size_t ActionRegistry::size() const {
  std::lock_guard<common::SpinMutex> guard(mutex_);
  return actions_.size();
}

}  // namespace amt
