// Work-stealing task scheduler — the per-locality worker pool standing in
// for HPX's thread scheduler. Matches the paper-relevant behaviours:
//   * any worker can spawn and execute tasks,
//   * idle workers call the parcelport's background-work function,
//   * a "resource partitioner" can reserve a dedicated progress thread
//     (handled by the parcelport itself; see parcelport_lci).
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cache.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/unique_function.hpp"
#include "queues/mpsc_queue.hpp"
#include "telemetry/telemetry.hpp"

namespace amt {

using Task = common::UniqueFunction<void()>;

class Scheduler {
 public:
  /// `name` labels worker threads (debuggers); workers are created by
  /// start(). The background hook is invoked by idle workers with their
  /// worker index and returns whether it found work (HPX background work).
  /// Metrics go under sched/<name>/... in `registry`; null gives the
  /// scheduler a private registry (standalone/test use).
  Scheduler(unsigned num_workers, std::string name,
            telemetry::Registry* registry = nullptr);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void set_background(std::function<bool(unsigned)> hook) {
    background_ = std::move(hook);
  }

  void start();
  /// Stops workers; pending tasks are abandoned (quiesce first).
  void stop();

  /// Thread-safe from any thread, including non-workers.
  void spawn(Task task);

  /// Executes one pending task on the calling thread if any is available.
  /// Callable from workers (local pop + steal) and from external threads
  /// (inject queue only). Returns whether a task ran.
  bool run_one();

  /// Worker-aware wait: executes tasks and background work while `pred` is
  /// false. Deadlock-free as long as the awaited event is produced by a
  /// task or by communication progress.
  template <typename Pred>
  void wait_until(Pred&& pred) {
    while (!pred()) {
      if (run_one()) continue;
      if (background_ != nullptr) {
        ctr_background_polls_.add();
        if (background_(current_worker_index())) continue;
      }
      std::this_thread::yield();
    }
  }

  unsigned num_workers() const { return num_workers_; }

  /// True when the calling thread is one of this scheduler's workers.
  bool on_worker() const;
  /// Worker index of the calling thread, or num_workers() for externals.
  unsigned current_worker_index() const;

  std::uint64_t tasks_executed() const { return ctr_executed_.value(); }
  std::uint64_t tasks_stolen() const { return ctr_steals_.value(); }

 private:
  struct Worker {
    common::SpinMutex mutex;
    std::deque<Task> queue;  // guarded by mutex
  };

  void worker_loop(unsigned index);
  bool try_pop_local(unsigned index, Task& task);
  bool try_steal(unsigned thief, Task& task);
  bool try_pop_inject(Task& task);

  const unsigned num_workers_;
  const std::string name_;
  std::function<bool(unsigned)> background_;

  // Metrics under sched/<name>/... (owned registry when none was injected).
  std::unique_ptr<telemetry::Registry> owned_registry_;
  telemetry::Counter& ctr_executed_;
  telemetry::Counter& ctr_steals_;
  telemetry::Counter& ctr_background_polls_;

  std::vector<common::CachePadded<Worker>> workers_;
  queues::TryMpmcQueue<Task> inject_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
};

/// Counting latch with a scheduler-aware wait; the building block tests and
/// applications use to join fan-out work.
class Latch {
 public:
  explicit Latch(std::int64_t count) : count_(count) {}

  void count_down(std::int64_t n = 1) {
    count_.fetch_sub(n, std::memory_order_acq_rel);
  }

  bool ready() const { return count_.load(std::memory_order_acquire) <= 0; }

  void wait(Scheduler& scheduler) {
    scheduler.wait_until([this] { return ready(); });
  }

 private:
  std::atomic<std::int64_t> count_;
};

}  // namespace amt
