#include "amt/parcelport.hpp"

#include <stdexcept>

#include "common/config.hpp"

namespace amt {

ParcelportConfig ParcelportConfig::parse(const std::string& name) {
  ParcelportConfig config;
  bool kind_seen = false;
  for (const auto& token : common::split_trim(name, '_')) {
    if (token == "mpi") {
      config.kind = Kind::kMpi;
      kind_seen = true;
    } else if (token == "lci") {
      config.kind = Kind::kLci;
      kind_seen = true;
    } else if (token == "tcp") {
      config.kind = Kind::kTcp;
      kind_seen = true;
    } else if (token == "psr") {
      config.protocol = Protocol::kPutSendRecv;
    } else if (token == "sr") {
      config.protocol = Protocol::kSendRecv;
    } else if (token == "cq") {
      config.completion = CompType::kQueue;
    } else if (token == "sy") {
      config.completion = CompType::kSync;
    } else if (token == "pin" || token == "rp") {
      config.progress = ProgressType::kPinned;
    } else if (token == "mt") {
      config.progress = ProgressType::kWorker;
    } else if (token == "i") {
      config.send_immediate = true;
    } else if (token == "pdinf") {
      config.lci_pipeline_depth = 0;
    } else if (token.size() > 2 && token.compare(0, 2, "pd") == 0 &&
               token.find_first_not_of("0123456789", 2) == std::string::npos) {
      const unsigned long depth = std::stoul(token.substr(2));
      if (depth == 0) {
        throw std::invalid_argument(
            "pipeline depth must be >= 1 (use pdinf for unbounded): " + name);
      }
      config.lci_pipeline_depth = depth;
    } else if (token == "ptinf") {
      config.lci_progress_threads = 0;
    } else if (token.size() > 2 && token.compare(0, 2, "pt") == 0 &&
               token.find_first_not_of("0123456789", 2) == std::string::npos) {
      const unsigned long threads = std::stoul(token.substr(2));
      if (threads == 0) {
        throw std::invalid_argument(
            "progress-ticket bound must be >= 1 (use ptinf for unbounded): " +
            name);
      }
      config.lci_progress_threads = threads;
    } else if (token.size() > 2 && token.compare(0, 2, "rs") == 0 &&
               token.find_first_not_of("0123456789", 2) == std::string::npos) {
      const unsigned long shards = std::stoul(token.substr(2));
      if (shards == 0) {
        throw std::invalid_argument(
            "rendezvous shard count must be >= 1: " + name);
      }
      config.lci_rdv_shards = shards;
    } else if (token == "fine") {
      config.mpi_coarse_lock = false;
    } else if (token == "orig") {
      config.mpi_original = true;
    } else if (!token.empty()) {
      throw std::invalid_argument("unknown parcelport config token: " +
                                  token);
    }
  }
  if (!kind_seen) {
    throw std::invalid_argument(
        "parcelport config must name mpi, lci, or tcp: " + name);
  }
  return config;
}

std::string ParcelportConfig::name() const {
  std::string out;
  if (kind == Kind::kMpi) {
    out = "mpi";
    if (!mpi_coarse_lock) out += "_fine";
    if (mpi_original) out += "_orig";
  } else if (kind == Kind::kTcp) {
    out = "tcp";
  } else {
    out = "lci";
    out += (protocol == Protocol::kPutSendRecv) ? "_psr" : "_sr";
    out += (completion == CompType::kQueue) ? "_cq" : "_sy";
    out += (progress == ProgressType::kPinned) ? "_pin" : "_mt";
    if (lci_pipeline_depth > 0) {
      out += "_pd" + std::to_string(lci_pipeline_depth);
    }
    if (lci_progress_threads > 0) {
      out += "_pt" + std::to_string(lci_progress_threads);
    }
    if (lci_rdv_shards > 0) {
      out += "_rs" + std::to_string(lci_rdv_shards);
    }
  }
  if (send_immediate) out += "_i";
  return out;
}

}  // namespace amt
