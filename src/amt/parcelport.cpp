#include "amt/parcelport.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "amt/wire_header.hpp"
#include "common/config.hpp"

namespace amt {

namespace {

/// Parses a "<prefix><digits>" token into an admission policy + bound.
/// Returns false when the token is not of that shape (caller keeps going).
bool parse_admission_token(const std::string& token, const char* prefix,
                           AdmissionConfig::Policy policy,
                           AdmissionConfig& admission) {
  const std::size_t len = std::strlen(prefix);
  if (token.size() <= len || token.compare(0, len, prefix) != 0) return false;
  if (token.find_first_not_of("0123456789", len) != std::string::npos) {
    return false;
  }
  const unsigned long bound = std::stoul(token.substr(len));
  if (bound == 0) {
    throw std::invalid_argument("admission bound must be >= 1: " + token);
  }
  admission.policy = policy;
  admission.queue_bound = bound;
  return true;
}

}  // namespace

void apply_admission_env(AdmissionConfig& config) {
  if (const char* s = std::getenv("AMTNET_ADMIT_POLICY")) {
    const std::string policy(s);
    if (policy == "off" || policy == "none") {
      config.policy = AdmissionConfig::Policy::kNone;
    } else if (policy == "shed") {
      config.policy = AdmissionConfig::Policy::kShed;
    } else if (policy == "block") {
      config.policy = AdmissionConfig::Policy::kBlock;
    } else if (policy == "deadline") {
      config.policy = AdmissionConfig::Policy::kDeadline;
    } else {
      throw std::invalid_argument("AMTNET_ADMIT_POLICY must be "
                                  "off|shed|block|deadline: " + policy);
    }
  }
  if (const char* s = std::getenv("AMTNET_ADMIT_BOUND")) {
    config.queue_bound = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("AMTNET_ADMIT_DEADLINE_US")) {
    config.deadline_us = std::strtod(s, nullptr);
  }
}

ParcelportConfig ParcelportConfig::parse(const std::string& name) {
  ParcelportConfig config;
  bool kind_seen = false;
  for (const auto& token : common::split_trim(name, '_')) {
    if (token == "mpi") {
      config.kind = Kind::kMpi;
      kind_seen = true;
    } else if (token == "lci") {
      config.kind = Kind::kLci;
      kind_seen = true;
    } else if (token == "tcp") {
      config.kind = Kind::kTcp;
      kind_seen = true;
    } else if (token == "psr") {
      config.protocol = Protocol::kPutSendRecv;
    } else if (token == "sr") {
      config.protocol = Protocol::kSendRecv;
    } else if (token == "cq") {
      config.completion = CompType::kQueue;
    } else if (token == "sy") {
      config.completion = CompType::kSync;
    } else if (token == "pin" || token == "rp") {
      config.progress = ProgressType::kPinned;
    } else if (token == "mt") {
      config.progress = ProgressType::kWorker;
    } else if (token == "i") {
      config.send_immediate = true;
    } else if (token == "pdinf") {
      config.lci_pipeline_depth = 0;
    } else if (token.size() > 2 && token.compare(0, 2, "pd") == 0 &&
               token.find_first_not_of("0123456789", 2) == std::string::npos) {
      const unsigned long depth = std::stoul(token.substr(2));
      if (depth == 0) {
        throw std::invalid_argument(
            "pipeline depth must be >= 1 (use pdinf for unbounded): " + name);
      }
      config.lci_pipeline_depth = depth;
    } else if (token == "ptinf") {
      config.lci_progress_threads = 0;
    } else if (token.size() > 2 && token.compare(0, 2, "pt") == 0 &&
               token.find_first_not_of("0123456789", 2) == std::string::npos) {
      const unsigned long threads = std::stoul(token.substr(2));
      if (threads == 0) {
        throw std::invalid_argument(
            "progress-ticket bound must be >= 1 (use ptinf for unbounded): " +
            name);
      }
      config.lci_progress_threads = threads;
    } else if (token.size() > 2 && token.compare(0, 2, "rs") == 0 &&
               token.find_first_not_of("0123456789", 2) == std::string::npos) {
      const unsigned long shards = std::stoul(token.substr(2));
      if (shards == 0) {
        throw std::invalid_argument(
            "rendezvous shard count must be >= 1: " + name);
      }
      config.lci_rdv_shards = shards;
    } else if (token == "fp") {
      config.lci_fastpath = 1;
    } else if (token == "fpoff") {
      config.lci_fastpath = 0;
    } else if (token.size() > 2 && token.compare(0, 2, "fp") == 0 &&
               token.find_first_not_of("0123456789", 2) == std::string::npos) {
      const unsigned long cap = std::stoul(token.substr(2));
      if (cap < 2) {
        throw std::invalid_argument(
            "fast-path cap must be >= 2 bytes (use fpoff to disable): " +
            name);
      }
      config.lci_fastpath = static_cast<long>(cap);
    } else if (token == "aggoff") {
      config.lci_agg = 0;
    } else if (token.size() > 4 && token.compare(0, 4, "aggt") == 0 &&
               token.find_first_not_of("0123456789", 4) == std::string::npos) {
      config.lci_agg_age_us = static_cast<long>(std::stoul(token.substr(4)));
    } else if (token.size() > 3 && token.compare(0, 3, "agg") == 0 &&
               token.find_first_not_of("0123456789", 3) == std::string::npos) {
      const unsigned long cap = std::stoul(token.substr(3));
      if (cap < kMinAggFrameBytes) {
        throw std::invalid_argument(
            "aggregation cap must be >= " +
            std::to_string(kMinAggFrameBytes) +
            " bytes (the minimum one-parcel batch frame; use aggoff to "
            "disable): " + name);
      }
      config.lci_agg = static_cast<long>(cap);
    } else if (token.size() > 4 && token.compare(0, 4, "coll") == 0) {
      const std::string algo = token.substr(4);
      if (algo == "auto") {
        config.coll.clear();
      } else if (algo == "central" || algo == "tree" || algo == "rd" ||
                 algo == "ring") {
        config.coll = algo;
      } else {
        throw std::invalid_argument(
            "collective algorithm must be auto, central, tree, rd, or "
            "ring: " + name);
      }
    } else if (token.size() > 7 && token.compare(0, 7, "backend") == 0) {
      config.fabric_backend = token.substr(7);
      fabric::validate_backend_name(config.fabric_backend);
    } else if (token == "fine") {
      config.mpi_coarse_lock = false;
    } else if (token == "orig") {
      config.mpi_original = true;
    } else if (parse_admission_token(token, "shed",
                                     AdmissionConfig::Policy::kShed,
                                     config.admission) ||
               parse_admission_token(token, "block",
                                     AdmissionConfig::Policy::kBlock,
                                     config.admission) ||
               parse_admission_token(token, "dl",
                                     AdmissionConfig::Policy::kDeadline,
                                     config.admission)) {
      // admission-control tokens, handled by parse_admission_token
    } else if (!token.empty()) {
      throw std::invalid_argument("unknown parcelport config token: " +
                                  token);
    }
  }
  if (!kind_seen) {
    throw std::invalid_argument(
        "parcelport config must name mpi, lci, or tcp: " + name);
  }
  return config;
}

std::string ParcelportConfig::name() const {
  std::string out;
  if (kind == Kind::kMpi) {
    out = "mpi";
    if (!mpi_coarse_lock) out += "_fine";
    if (mpi_original) out += "_orig";
  } else if (kind == Kind::kTcp) {
    out = "tcp";
  } else {
    out = "lci";
    out += (protocol == Protocol::kPutSendRecv) ? "_psr" : "_sr";
    out += (completion == CompType::kQueue) ? "_cq" : "_sy";
    out += (progress == ProgressType::kPinned) ? "_pin" : "_mt";
    if (lci_pipeline_depth > 0) {
      out += "_pd" + std::to_string(lci_pipeline_depth);
    }
    if (lci_progress_threads > 0) {
      out += "_pt" + std::to_string(lci_progress_threads);
    }
    if (lci_rdv_shards > 0) {
      out += "_rs" + std::to_string(lci_rdv_shards);
    }
    if (lci_fastpath == 0) {
      out += "_fpoff";
    } else if (lci_fastpath == 1) {
      out += "_fp";
    } else if (lci_fastpath > 1) {
      out += "_fp" + std::to_string(lci_fastpath);
    }
    if (lci_agg == 0) {
      out += "_aggoff";
    } else if (lci_agg > 0) {
      out += "_agg" + std::to_string(lci_agg);
    }
    if (lci_agg_age_us >= 0) {
      out += "_aggt" + std::to_string(lci_agg_age_us);
    }
  }
  if (send_immediate) out += "_i";
  if (!coll.empty()) out += "_coll" + coll;
  if (fabric_backend != "sim") out += "_backend" + fabric_backend;
  if (admission.on()) {
    switch (admission.policy) {
      case AdmissionConfig::Policy::kShed:
        out += "_shed" + std::to_string(admission.queue_bound);
        break;
      case AdmissionConfig::Policy::kBlock:
        out += "_block" + std::to_string(admission.queue_bound);
        break;
      case AdmissionConfig::Policy::kDeadline:
        out += "_dl" + std::to_string(admission.queue_bound);
        break;
      case AdmissionConfig::Policy::kNone:
        break;
    }
  }
  return out;
}

}  // namespace amt
