#include "parcelport_tcp/parcelport_tcp.hpp"

#include <cassert>
#include <cstring>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/crc32.hpp"
#include "common/integrity.hpp"
#include "common/logging.hpp"

namespace pptcp {

namespace {
// Frame prefix: [u64 main_size][u32 num_zchunks][u32 frame_seq][u32 crc].
// frame_seq is a strict per-stream counter; crc is CRC-32 over everything
// after the prefix (zsizes + main + zchunks), 0 when the sender runs with
// integrity checking off.
constexpr std::size_t kPrefixSize =
    sizeof(std::uint64_t) + 3 * sizeof(std::uint32_t);
constexpr std::size_t kSeqOffset =
    sizeof(std::uint64_t) + sizeof(std::uint32_t);
constexpr std::size_t kCrcOffset = kSeqOffset + sizeof(std::uint32_t);

std::string pp_metric(amt::Rank rank, const char* leaf) {
  return "pptcp/loc" + std::to_string(rank) + "/" + leaf;
}
}  // namespace

TcpParcelport::TcpParcelport(const amt::ParcelportContext& context)
    : context_(context),
      integrity_on_(context.fabric->config().faults.integrity_on()),
      mux_(*context.fabric, context.rank),
      ctr_delivered_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "messages_delivered"))),
      hist_send_ns_(context.fabric->telemetry().histogram(
          pp_metric(context.rank, "send_ns"))),
      gauge_send_queue_depth_(context.fabric->telemetry().gauge(
          pp_metric(context.rank, "send_queue_depth"))) {
  const amt::Rank n = context.fabric->num_ranks();
  for (amt::Rank r = 0; r < n; ++r) {
    tx_queues_.push_back(std::make_unique<TxQueue>());
    rx_states_.push_back(std::make_unique<RxState>());
    rx_mutexes_.push_back(std::make_unique<common::SpinMutex>());
  }
}

void TcpParcelport::start() { started_.store(true); }
void TcpParcelport::stop() { started_.store(false); }

void TcpParcelport::send(amt::Rank dst, amt::OutMessage msg,
                         common::UniqueFunction<void()> done) {
  AMTNET_TRACE_SCOPE("pptcp", "send");
  gauge_send_queue_depth_.add();  // balanced when the frame fully streams
  if (telemetry::timing_enabled()) {
    const common::Nanos start = common::now_ns();
    done = [this, start, inner = std::move(done)]() mutable {
      hist_send_ns_.record(
          static_cast<std::uint64_t>(common::now_ns() - start));
      inner();
    };
  }
  OutFrame frame;
  frame.done = std::move(done);

  // Frame prefix: main size, zchunk count, zchunk sizes.
  frame.header.resize(kPrefixSize +
                      msg.zchunks.size() * sizeof(std::uint64_t));
  const std::uint64_t main_size = msg.main_chunk.size();
  const std::uint32_t num_z = static_cast<std::uint32_t>(msg.zchunks.size());
  std::memcpy(frame.header.data(), &main_size, sizeof(main_size));
  std::memcpy(frame.header.data() + sizeof(main_size), &num_z,
              sizeof(num_z));
  for (std::size_t i = 0; i < msg.zchunks.size(); ++i) {
    const std::uint64_t zsize = msg.zchunks[i].size;
    std::memcpy(frame.header.data() + kPrefixSize +
                    i * sizeof(std::uint64_t),
                &zsize, sizeof(zsize));
  }
  if (integrity_on_) {
    // CRC everything after the prefix: the zsize array just encoded plus
    // every payload byte. One extra pass over the data, only in fault mode.
    std::uint32_t crc = common::crc32(frame.header.data() + kPrefixSize,
                                      frame.header.size() - kPrefixSize);
    crc = common::crc32(msg.main_chunk.data(), msg.main_chunk.size(), crc);
    for (const amt::ZChunk& chunk : msg.zchunks) {
      crc = common::crc32(chunk.data, chunk.size, crc);
    }
    std::memcpy(frame.header.data() + kCrcOffset, &crc, sizeof(crc));
  }

  frame.pieces.emplace_back(frame.header.data(), frame.header.size());
  frame.pieces.emplace_back(msg.main_chunk.data(), msg.main_chunk.size());
  for (const amt::ZChunk& chunk : msg.zchunks) {
    frame.pieces.emplace_back(chunk.data, chunk.size);
  }
  frame.msg = std::move(msg);

  {
    TxQueue& queue = *tx_queues_[dst];
    std::lock_guard<common::SpinMutex> guard(queue.mutex);
    // Stamp the sequence under the queue lock so it matches the order the
    // frame enters the stream.
    const std::uint32_t seq = queue.next_seq++;
    std::memcpy(frame.header.data() + kSeqOffset, &seq, sizeof(seq));
    queue.frames.push_back(std::move(frame));
  }
  pump_tx(dst);
}

bool TcpParcelport::pump_tx(amt::Rank dst) {
  TxQueue& queue = *tx_queues_[dst];
  std::lock_guard<common::SpinMutex> guard(queue.mutex);
  bool moved = false;
  while (!queue.frames.empty()) {
    OutFrame& frame = queue.frames.front();
    while (!frame.finished()) {
      auto [data, size] = frame.pieces[frame.piece_index];
      const std::size_t accepted = mux_.send_some(
          dst, data + frame.piece_offset, size - frame.piece_offset);
      if (accepted == 0) return moved;  // stream send buffer full
      moved = true;
      frame.piece_offset += accepted;
      if (frame.piece_offset == size) {
        ++frame.piece_index;
        frame.piece_offset = 0;
      }
    }
    gauge_send_queue_depth_.sub();
    frame.done();
    queue.frames.pop_front();
  }
  return moved;
}

void TcpParcelport::finish_frame(amt::Rank src, RxState& rx) {
  if (rx.frame_crc != 0) {
    // Recompute the CRC over everything after the prefix, exactly as the
    // sender did: zsize array bytes, main chunk, then each zchunk.
    std::uint32_t crc = common::crc32(
        rx.zsizes.data(), rx.zsizes.size() * sizeof(std::uint64_t));
    crc = common::crc32(rx.main.data(), rx.main.size(), crc);
    for (const auto& chunk : rx.zchunks) {
      crc = common::crc32(chunk.data(), chunk.size(), crc);
    }
    if (crc != rx.frame_crc) {
      common::integrity_fail(
          "pptcp: frame CRC mismatch rank=", context_.rank, " src=", src,
          " seq=", rx.frame_seq, " main_size=", rx.main.size(),
          " num_zchunks=", rx.zchunks.size(), " stored=", rx.frame_crc,
          " computed=", crc, " — corrupted bytes survived the stream layer");
    }
  }
  amt::InMessage in;
  in.source = src;
  in.main_chunk = std::move(rx.main);
  in.zchunks = std::move(rx.zchunks);
  ctr_delivered_.add();
  RxState fresh;  // reset for the next frame; the seq expectation survives
  fresh.next_seq = rx.frame_seq + 1;
  rx = std::move(fresh);
  context_.deliver(std::move(in));
}

bool TcpParcelport::pump_rx(amt::Rank src) {
  // One worker at a time parses a given source stream.
  if (!rx_mutexes_[src]->try_lock()) return false;
  std::lock_guard<common::SpinMutex> guard(*rx_mutexes_[src],
                                           std::adopt_lock);
  RxState& rx = *rx_states_[src];
  bool moved = false;
  for (;;) {
    switch (rx.stage) {
      case RxState::Stage::kPrefix: {
        if (rx.scratch.size() < kPrefixSize) rx.scratch.resize(kPrefixSize);
        const std::size_t got =
            mux_.recv_some(src, rx.scratch.data() + rx.filled,
                           kPrefixSize - rx.filled);
        rx.filled += got;
        moved |= got > 0;
        if (rx.filled < kPrefixSize) return moved;
        std::memcpy(&rx.main_size, rx.scratch.data(), sizeof(rx.main_size));
        std::memcpy(&rx.num_zchunks,
                    rx.scratch.data() + sizeof(rx.main_size),
                    sizeof(rx.num_zchunks));
        std::memcpy(&rx.frame_seq, rx.scratch.data() + kSeqOffset,
                    sizeof(rx.frame_seq));
        std::memcpy(&rx.frame_crc, rx.scratch.data() + kCrcOffset,
                    sizeof(rx.frame_crc));
        if (integrity_on_ && rx.frame_seq != rx.next_seq) {
          // The stream is ordered, so the frame counter must advance in
          // lockstep; a gap means frame desync or corrupted framing.
          common::integrity_fail("pptcp: frame sequence mismatch rank=",
                                 context_.rank, " src=", src,
                                 " expected=", rx.next_seq,
                                 " got=", rx.frame_seq,
                                 " — stream framing desynchronised");
        }
        rx.filled = 0;
        rx.stage = rx.num_zchunks > 0 ? RxState::Stage::kZSizes
                                      : RxState::Stage::kMain;
        break;
      }
      case RxState::Stage::kZSizes: {
        const std::size_t want = rx.num_zchunks * sizeof(std::uint64_t);
        if (rx.scratch.size() < want) rx.scratch.resize(want);
        const std::size_t got = mux_.recv_some(
            src, rx.scratch.data() + rx.filled, want - rx.filled);
        rx.filled += got;
        moved |= got > 0;
        if (rx.filled < want) return moved;
        rx.zsizes.resize(rx.num_zchunks);
        std::memcpy(rx.zsizes.data(), rx.scratch.data(), want);
        rx.filled = 0;
        rx.stage = RxState::Stage::kMain;
        break;
      }
      case RxState::Stage::kMain: {
        rx.main.resize(rx.main_size);
        const std::size_t got = mux_.recv_some(
            src, rx.main.data() + rx.filled, rx.main_size - rx.filled);
        rx.filled += got;
        moved |= got > 0;
        if (rx.filled < rx.main_size) return moved;
        rx.filled = 0;
        if (rx.num_zchunks == 0) {
          finish_frame(src, rx);
          break;
        }
        rx.stage = RxState::Stage::kZChunks;
        rx.zchunks.clear();
        rx.zindex = 0;
        break;
      }
      case RxState::Stage::kZChunks: {
        if (rx.zchunks.size() <= rx.zindex) {
          rx.zchunks.emplace_back(rx.zsizes[rx.zindex]);
        }
        auto& chunk = rx.zchunks[rx.zindex];
        const std::size_t got = mux_.recv_some(
            src, chunk.data() + rx.filled, chunk.size() - rx.filled);
        rx.filled += got;
        moved |= got > 0;
        if (rx.filled < chunk.size()) return moved;
        rx.filled = 0;
        ++rx.zindex;
        if (rx.zindex == rx.num_zchunks) finish_frame(src, rx);
        break;
      }
    }
  }
}

bool TcpParcelport::background_work(unsigned /*worker_index*/) {
  if (!started_.load(std::memory_order_relaxed)) return false;
  bool moved = mux_.progress();
  for (amt::Rank dst = 0; dst < tx_queues_.size(); ++dst) {
    bool nonempty;
    {
      TxQueue& queue = *tx_queues_[dst];
      std::lock_guard<common::SpinMutex> guard(queue.mutex);
      nonempty = !queue.frames.empty();
    }
    if (nonempty) moved |= pump_tx(dst);
  }
  for (amt::Rank src = 0; src < rx_states_.size(); ++src) {
    if (mux_.available(src) > 0) moved |= pump_rx(src);
  }
  return moved;
}

}  // namespace pptcp
