// The TCP parcelport — HPX's original backend (paper §1: "Prior to this
// project, it had two communication backends (parcelports): TCP and MPI"),
// rebuilt over the ministream byte-stream layer.
//
// Per destination there is one ordered byte stream; HPX messages travel as
// length-prefixed frames:
//
//   [u64 main_size][u32 num_zchunks][u64 zsize...][main bytes][zchunk bytes...]
//
// No tags, no matching, no rendezvous: ordering comes from the stream, and
// large payloads are simply streamed through the bounded send buffer. This
// is exactly why stream transports underperform for AMTs — every byte of a
// large message funnels through one ordered pipe per peer, head-of-line
// blocking included — and it serves as the below-MPI baseline in the
// extra comparison benchmark.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "amt/parcelport.hpp"
#include "common/spinlock.hpp"
#include "ministream/stream_mux.hpp"
#include "telemetry/telemetry.hpp"

namespace pptcp {

class TcpParcelport final : public amt::Parcelport {
 public:
  explicit TcpParcelport(const amt::ParcelportContext& context);

  void start() override;
  void stop() override;
  void send(amt::Rank dst, amt::OutMessage msg,
            common::UniqueFunction<void()> done) override;
  bool background_work(unsigned worker_index) override;

  std::uint64_t messages_delivered() const { return ctr_delivered_.value(); }

 private:
  struct OutFrame {
    amt::OutMessage msg;
    common::UniqueFunction<void()> done;
    std::vector<std::byte> header;  // the frame prefix
    // Flat piece list over header/main/zchunks, streamed in order.
    std::vector<std::pair<const std::byte*, std::size_t>> pieces;
    std::size_t piece_index = 0;
    std::size_t piece_offset = 0;

    bool finished() const { return piece_index >= pieces.size(); }
  };

  /// Incremental frame parser, one per source stream.
  struct RxState {
    enum class Stage : std::uint8_t { kPrefix, kZSizes, kMain, kZChunks };
    Stage stage = Stage::kPrefix;
    std::vector<std::byte> scratch;  // bytes of the current fixed section
    std::uint64_t main_size = 0;
    std::uint32_t num_zchunks = 0;
    // Frame integrity (prefix fields): strict per-stream frame counter and
    // CRC-32 over everything after the prefix (0 = sender sent unchecked).
    std::uint32_t frame_seq = 0;
    std::uint32_t frame_crc = 0;
    std::uint32_t next_seq = 0;  // expected frame_seq; survives frame resets
    std::vector<std::uint64_t> zsizes;
    std::vector<std::byte> main;
    std::size_t filled = 0;  // bytes of the current variable section
    std::vector<std::vector<std::byte>> zchunks;
    std::size_t zindex = 0;
  };

  bool pump_tx(amt::Rank dst);
  bool pump_rx(amt::Rank src);
  void finish_frame(amt::Rank src, RxState& rx);

  const amt::ParcelportContext context_;
  const bool integrity_on_;
  ministream::StreamMux mux_;

  struct TxQueue {
    common::SpinMutex mutex;
    std::deque<OutFrame> frames;
    // Stamped into the frame prefix under `mutex`, so the sequence matches
    // the order frames actually enter the (ordered) stream.
    std::uint32_t next_seq = 0;
  };
  std::vector<std::unique_ptr<TxQueue>> tx_queues_;   // per destination
  std::vector<std::unique_ptr<RxState>> rx_states_;   // per source
  std::vector<std::unique_ptr<common::SpinMutex>> rx_mutexes_;

  // Metrics under pptcp/loc<rank>/... in the fabric's registry; send_ns
  // spans send() entry to done-callback firing when timing is enabled.
  telemetry::Counter& ctr_delivered_;
  telemetry::Histogram& hist_send_ns_;
  telemetry::Gauge& gauge_send_queue_depth_;  // frames queued or streaming,
                                              // done callback still pending

  std::atomic<bool> started_{false};
};

}  // namespace pptcp
