// Unbounded multi-producer / single-consumer queue (Vyukov's intrusive MPSC
// adapted to owned nodes). Producers are wait-free except for one atomic
// exchange; the consumer is lock-free with the usual MPSC caveat that a
// producer suspended between exchange and link makes the queue *appear*
// momentarily empty — consumers handle this by re-polling, which all our
// progress loops do anyway.
//
// Multi-consumer use: wrap pops in the owner's try-lock (see TryMpmcQueue).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "common/cache.hpp"
#include "common/spinlock.hpp"

namespace queues {

template <typename T>
class MpscQueue {
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
  };

 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.value.store(stub, std::memory_order_relaxed);
    tail_.store(stub, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* node = tail_.load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  /// Thread-safe for any number of producers.
  void push(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = head_.value.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Single consumer only.
  std::optional<T> try_pop() {
    Node* tail = tail_.load(std::memory_order_relaxed);
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    T value = std::move(next->value);
    tail_.store(next, std::memory_order_release);
    delete tail;
    return value;
  }

  /// Pops the head element only when `pred(head)` holds. Used by the fabric
  /// to gate delivery on a packet's arrival time without losing FIFO order.
  /// Single consumer only.
  template <typename Pred>
  std::optional<T> try_pop_if(Pred&& pred) {
    Node* tail = tail_.load(std::memory_order_relaxed);
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    if (!pred(static_cast<const T&>(next->value))) return std::nullopt;
    T value = std::move(next->value);
    tail_.store(next, std::memory_order_release);
    delete tail;
    return value;
  }

  /// May transiently report empty while a push is mid-flight (and may report
  /// non-empty before the push links its node); fine for polling loops.
  /// Callable from ANY thread: compares the two end pointers without
  /// dereferencing either — the consumer may delete the tail node at any
  /// moment, so a cross-thread `tail_->next` read would be use-after-free.
  bool looks_empty() const {
    return head_.value.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  common::CachePadded<std::atomic<Node*>> head_;  // producers push here
  alignas(common::kCacheLineSize) std::atomic<Node*> tail_;  // consumer end
};

/// MPSC queue plus a consumer-side try-lock, making it safe for multiple
/// concurrent consumers. A failed try_pop() with `contended == true` means
/// another thread is draining the queue right now — exactly the semantics the
/// LCI completion queue and the fabric receive channels need: progress
/// callers skip contended queues instead of blocking on them.
template <typename T>
class TryMpmcQueue {
 public:
  void push(T value) { queue_.push(std::move(value)); }

  std::optional<T> try_pop(bool* contended = nullptr) {
    if (!consumer_lock_.try_lock()) {
      if (contended != nullptr) *contended = true;
      return std::nullopt;
    }
    if (contended != nullptr) *contended = false;
    auto value = queue_.try_pop();
    consumer_lock_.unlock();
    return value;
  }

  /// Drains up to `max_items` under one lock acquisition; returns the number
  /// popped. Cheaper than repeated try_pop when bursts arrive.
  template <typename Fn>
  std::size_t try_drain(std::size_t max_items, Fn&& fn) {
    if (!consumer_lock_.try_lock()) return 0;
    std::size_t n = 0;
    while (n < max_items) {
      auto value = queue_.try_pop();
      if (!value) break;
      fn(std::move(*value));
      ++n;
    }
    consumer_lock_.unlock();
    return n;
  }

  /// Drains elements while `pred(head)` holds, up to `max_items`, under one
  /// try-lock acquisition. Stops at the first head element failing `pred`,
  /// preserving FIFO order. `pred` must do any resource reservation the sink
  /// needs (an element, once popped, is always handed to `fn`). Returns the
  /// number delivered.
  template <typename Pred, typename Fn>
  std::size_t try_drain_while(std::size_t max_items, Pred&& pred, Fn&& fn) {
    if (!consumer_lock_.try_lock()) return 0;
    std::size_t n = 0;
    while (n < max_items) {
      auto value = queue_.try_pop_if(pred);
      if (!value) break;
      fn(std::move(*value));
      ++n;
    }
    consumer_lock_.unlock();
    return n;
  }

  /// Peek-and-pop under the consumer lock: pops only if `pred` accepts the
  /// head element.
  template <typename Pred>
  std::optional<T> try_pop_if(Pred&& pred) {
    if (!consumer_lock_.try_lock()) return std::nullopt;
    auto value = queue_.try_pop_if(pred);
    consumer_lock_.unlock();
    return value;
  }

  bool looks_empty() const { return queue_.looks_empty(); }

 private:
  MpscQueue<T> queue_;
  common::SpinMutex consumer_lock_;
};

}  // namespace queues
