// Bounded single-producer / single-consumer ring buffer.
//
// Classic Lamport ring with cached indices: the producer and consumer each
// keep a local copy of the other side's index and only re-read the shared
// atomic when the cached value says the ring looks full/empty. Push and pop
// are wait-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/cache.hpp"

namespace queues {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity.
  explicit SpscRing(std::size_t capacity)
      : mask_(round_up_pow2(capacity + 1) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  bool try_push(T value) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == cached_tail_) {
      cached_tail_ = tail_.value.load(std::memory_order_acquire);
      if (next == cached_tail_) return false;  // full
    }
    slots_[head] = std::move(value);
    head_.value.store(next, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.value.load(std::memory_order_acquire);
      if (tail == cached_head_) return std::nullopt;  // empty
    }
    T value = std::move(slots_[tail]);
    tail_.value.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return head_.value.load(std::memory_order_acquire) ==
           tail_.value.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t mask_;
  std::vector<T> slots_;
  common::CachePadded<std::atomic<std::size_t>> head_{0};  // producer side
  common::CachePadded<std::atomic<std::size_t>> tail_{0};  // consumer side
  // Locals live next to the index they belong to conceptually; they are only
  // touched by one side each, so plain members suffice.
  std::size_t cached_tail_ = 0;  // producer's view of tail
  std::size_t cached_head_ = 0;  // consumer's view of head
};

}  // namespace queues
