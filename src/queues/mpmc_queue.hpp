// Bounded multi-producer / multi-consumer queue (Dmitry Vyukov's sequenced
// ring). Both push and pop are lock-free; each slot carries a sequence
// number that tickets producers and consumers without a shared lock.
//
// Used for free-lists (packet pools) and anywhere both sides are
// multi-threaded and a capacity bound doubles as back-pressure.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/cache.hpp"

namespace queues {

template <typename T>
class MpmcQueue {
  struct Slot {
    std::atomic<std::size_t> sequence;
    T value;
  };

 public:
  explicit MpmcQueue(std::size_t capacity)
      : mask_(round_up_pow2(capacity) - 1), slots_(mask_ + 1) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  bool try_push(T value) {
    std::size_t pos = enqueue_pos_.value.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.value.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.value.load(std::memory_order_relaxed);
      }
    }
  }

  std::optional<T> try_pop() {
    std::size_t pos = dequeue_pos_.value.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.value.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          T value = std::move(slot.value);
          slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return value;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.value.load(std::memory_order_relaxed);
      }
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t mask_;
  std::vector<Slot> slots_;
  common::CachePadded<std::atomic<std::size_t>> enqueue_pos_{0};
  common::CachePadded<std::atomic<std::size_t>> dequeue_pos_{0};
};

}  // namespace queues
