#include "minimpi/minimpi.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/integrity.hpp"
#include "common/logging.hpp"

namespace minimpi {

namespace {

// Wire immediate layout: [63:56] kind | [55:32] tag (24 bits) | [31:0] arg.
// arg carries the sequence number (sequenced kinds) or a rendezvous id.
enum class MsgKind : std::uint8_t {
  kEager = 1,  // sequenced; payload = user data
  kRts = 2,    // sequenced; payload = RtsPayload
  kCts = 3,    // unsequenced; payload = CtsPayload
  kFin = 4,    // RDMA write-with-immediate; arg = receiver rendezvous id
};

struct RtsPayload {
  std::uint64_t size;
  std::uint32_t sender_id;
  // CRC-32 over the payload that will travel by RDMA write; 0 when integrity
  // mode is off. Verified by the receiver when the FIN lands.
  std::uint32_t crc;
};

struct CtsPayload {
  std::uint64_t mr_id;
  std::uint64_t max_len;
  std::uint32_t sender_id;
  std::uint32_t recv_id;
};

std::uint64_t make_imm(MsgKind kind, Tag tag, std::uint32_t arg) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(tag & (kTagUpperBound - 1)) << 32) |
         arg;
}

MsgKind imm_kind(std::uint64_t imm) {
  return static_cast<MsgKind>(imm >> 56);
}
Tag imm_tag(std::uint64_t imm) {
  return static_cast<Tag>((imm >> 32) & (kTagUpperBound - 1));
}
std::uint32_t imm_arg(std::uint64_t imm) {
  return static_cast<std::uint32_t>(imm);
}

/// RAII guard that takes the coarse blocking lock only in coarse mode,
/// recording how long acquisition stalled — the paper's §4b "threads convoy
/// on the ucp_progress lock" effect, made directly measurable.
class MaybeBigLock {
 public:
  MaybeBigLock(common::UcxStyleSpinMutex& mutex, LockMode mode,
               telemetry::Histogram& wait_hist) {
    if (mode == LockMode::kCoarseBlocking) {
      if (telemetry::timing_enabled()) {
        const common::Nanos start = common::now_ns();
        guard_ = std::unique_lock(mutex);
        wait_hist.record(
            static_cast<std::uint64_t>(common::now_ns() - start));
      } else {
        guard_ = std::unique_lock(mutex);
      }
    }
  }

 private:
  std::unique_lock<common::UcxStyleSpinMutex> guard_;
};

std::string comm_metric(Rank rank, const char* leaf) {
  return "minimpi/comm" + std::to_string(rank) + "/" + leaf;
}

}  // namespace

Comm::Comm(fabric::Fabric& fabric, Rank rank, Config config)
    : fabric_(fabric),
      nic_(fabric.nic(rank)),
      rank_(rank),
      config_(config),
      rel_(fabric, rank, "mpi"),
      integrity_on_(fabric.config().faults.integrity_on()),
      reorder_(fabric.num_ranks()),
      tx_seq_(fabric.num_ranks()),
      ctr_completed_(
          fabric.telemetry().counter(comm_metric(rank, "completed_ops"))),
      ctr_unexpected_(
          fabric.telemetry().counter(comm_metric(rank, "unexpected_msgs"))),
      hist_lock_wait_ns_(fabric.telemetry().histogram(
          comm_metric(rank, "progress_lock_wait_ns"))) {
  // Integrity mode appends an 8-byte trailer to every eager send.
  assert(config_.eager_threshold + (rel_.enabled() ? 8 : 0) <=
         nic_.srq_buffer_size());
}

void Comm::mark_done(const std::shared_ptr<detail::ReqState>& req) {
  req->done.store(true, std::memory_order_release);
  ctr_completed_.add();
}

Request Comm::isend(const void* buf, std::size_t len, Rank dst, Tag tag) {
  assert(tag >= 0 && tag < kTagUpperBound);
  MaybeBigLock big(big_lock_, config_.lock_mode, hist_lock_wait_ns_);

  auto req = std::make_shared<detail::ReqState>();
  const std::uint32_t seq =
      tx_seq_[dst].value.fetch_add(1, std::memory_order_relaxed);

  if (len <= config_.eager_threshold) {
    const std::uint64_t imm = make_imm(MsgKind::kEager, tag, seq);
    if (rel_.send(dst, buf, len, imm) == common::Status::kOk) {
      mark_done(req);
    } else {
      // TX window full: buffer the eager payload and retry from progress.
      std::vector<std::byte> copy(static_cast<const std::byte*>(buf),
                                  static_cast<const std::byte*>(buf) + len);
      send_ctrl(dst, imm, std::move(copy), req);
    }
  } else {
    std::uint32_t id;
    {
      std::lock_guard<common::SpinMutex> guard(rdv_mutex_);
      id = next_rdv_id_++;
      rdv_sends_[id] =
          RdvSend{static_cast<const std::byte*>(buf), len, req};
    }
    const std::uint32_t crc =
        integrity_on_ ? common::crc32(buf, len) : 0;
    RtsPayload rts{len, id, crc};
    std::vector<std::byte> payload(sizeof(rts));
    std::memcpy(payload.data(), &rts, sizeof(rts));
    send_ctrl(dst, make_imm(MsgKind::kRts, tag, seq), std::move(payload));
  }
  // Real MPI implementations opportunistically progress inside Isend — under
  // the same coarse lock, which is part of the contention the paper blames.
  progress_locked();
  return Request(req);
}

Request Comm::irecv(void* buf, std::size_t maxlen, int src, Tag tag) {
  assert(tag >= 0 && tag < kTagUpperBound);
  MaybeBigLock big(big_lock_, config_.lock_mode, hist_lock_wait_ns_);

  auto req = std::make_shared<detail::ReqState>();
  req->is_recv = true;
  req->buf = static_cast<std::byte*>(buf);
  req->maxlen = maxlen;
  req->want_src = src;
  req->want_tag = tag;

  std::lock_guard<common::SpinMutex> guard(match_mutex_);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((src == kAnySource || static_cast<Rank>(src) == it->src) &&
        tag == it->tag) {
      UnexpectedMsg msg = std::move(*it);
      unexpected_.erase(it);
      if (msg.is_rts) {
        start_recv_rendezvous(req, msg.src, msg.tag, msg.rdv_size,
                              msg.rdv_sender_id, msg.rdv_crc);
      } else {
        complete_recv_eager(req, msg.src, msg.tag, msg.payload.data(),
                            msg.payload.size());
      }
      return Request(req);
    }
  }
  posted_recvs_.push_back(req);
  return Request(req);
}

bool Comm::test(Request& request) {
  assert(request.valid());
  if (request.done()) return true;
  MaybeBigLock big(big_lock_, config_.lock_mode, hist_lock_wait_ns_);
  progress_locked();
  return request.done();
}

void Comm::progress() {
  MaybeBigLock big(big_lock_, config_.lock_mode, hist_lock_wait_ns_);
  progress_locked();
}

void Comm::progress_locked() {
  // In fine-grained mode concurrent progress calls skip instead of queueing;
  // in coarse mode the big lock has already serialised us.
  if (config_.lock_mode == LockMode::kFineGrained) {
    if (!progress_mutex_.try_lock()) return;
  }
  retry_deferred();
  rel_.progress();
  constexpr std::size_t kBatch = 64;
  nic_.poll_rx(kBatch, [this](fabric::RxEvent&& event) {
    // The reliable sublayer strips its trailer, dedups, and swallows acks;
    // only fresh verified datagrams reach the protocol handlers.
    if (!rel_.on_recv(event)) return;
    handle_event(std::move(event));
  });
  if (config_.lock_mode == LockMode::kFineGrained) {
    progress_mutex_.unlock();
  }
}

void Comm::send_ctrl(Rank dst, std::uint64_t imm,
                     std::vector<std::byte> payload,
                     std::shared_ptr<detail::ReqState> complete_on_send) {
  if (rel_.send(dst, payload.data(), payload.size(), imm) ==
      common::Status::kOk) {
    if (complete_on_send) mark_done(complete_on_send);
    return;
  }
  std::lock_guard<common::SpinMutex> guard(deferred_mutex_);
  deferred_.push_back(DeferredCtrl{dst, imm, std::move(payload),
                                   std::move(complete_on_send)});
}

void Comm::retry_deferred() {
  // Retry queued control/eager messages per destination. Sequencing only
  // has to hold within one directed channel, so a rejection (TX window full
  // towards one backed-up peer) blocks further retries to THAT destination
  // only — it must not head-of-line-stall deferred traffic to everyone
  // else, which the old stop-at-first-rejection loop did.
  std::deque<DeferredCtrl> work;
  {
    std::lock_guard<common::SpinMutex> guard(deferred_mutex_);
    if (deferred_.empty()) return;
    work.swap(deferred_);
  }
  std::vector<bool> blocked(fabric_.num_ranks(), false);
  std::deque<DeferredCtrl> kept;
  for (DeferredCtrl& msg : work) {
    if (blocked[msg.dst]) {
      kept.push_back(std::move(msg));
      continue;
    }
    common::Status status;
    if (msg.is_write) {
      status = nic_.post_write_imm(msg.dst,
                                   fabric::MrKey{msg.dst, msg.write_mr_id}, 0,
                                   msg.payload.data(), msg.payload.size(),
                                   msg.imm);
    } else {
      status = rel_.send(msg.dst, msg.payload.data(), msg.payload.size(),
                         msg.imm);
    }
    if (status != common::Status::kOk) {
      blocked[msg.dst] = true;
      kept.push_back(std::move(msg));
      continue;
    }
    if (msg.complete_on_send) mark_done(msg.complete_on_send);
  }
  if (!kept.empty()) {
    // Anything enqueued while we worked is younger than every kept entry;
    // re-inserting at the front preserves per-channel FIFO order.
    std::lock_guard<common::SpinMutex> guard(deferred_mutex_);
    deferred_.insert(deferred_.begin(),
                     std::make_move_iterator(kept.begin()),
                     std::make_move_iterator(kept.end()));
  }
}

void Comm::handle_event(fabric::RxEvent&& event) {
  const MsgKind kind = imm_kind(event.imm);

  if (event.kind == fabric::RxEvent::Kind::kWriteImm) {
    assert(kind == MsgKind::kFin);
    const std::uint32_t recv_id = imm_arg(event.imm);
    std::shared_ptr<detail::ReqState> req;
    fabric::MrKey mr;
    std::size_t rdv_size = 0;
    std::uint32_t expected_crc = 0;
    {
      std::lock_guard<common::SpinMutex> guard(rdv_mutex_);
      auto it = rdv_recvs_.find(recv_id);
      if (it == rdv_recvs_.end()) {
        AMTNET_LOG_ERROR("minimpi: FIN for unknown rendezvous id ", recv_id);
        return;
      }
      req = it->second.req;
      mr = it->second.mr;
      rdv_size = it->second.size;
      expected_crc = it->second.expected_crc;
      rdv_recvs_.erase(it);
    }
    nic_.deregister_memory(mr);
    // Integrity mode: verify the sender's CRC from the RTS against the bytes
    // the RDMA write actually landed. One-sided data has no retransmit path,
    // so a mismatch fail-fasts with a diagnostic dump. Skipped when the
    // receive buffer truncated the message (sizes differ by design then).
    if (integrity_on_ && expected_crc != 0 && event.size == rdv_size) {
      const std::uint32_t actual = common::crc32(req->buf, event.size);
      if (actual != expected_crc) {
        common::integrity_fail(
            "minimpi: RDMA payload CRC mismatch rank=", rank_,
            " src=", event.src, " recv_id=", recv_id, " size=", event.size,
            " expected_crc=", expected_crc, " actual_crc=", actual,
            " — corruption past the rendezvous; no retransmit path exists");
      }
    }
    req->size = event.size;
    mark_done(req);
    return;
  }

  switch (kind) {
    case MsgKind::kEager:
    case MsgKind::kRts: {
      StashedMsg msg;
      msg.tag = imm_tag(event.imm);
      msg.is_rts = (kind == MsgKind::kRts);
      if (msg.is_rts) {
        RtsPayload rts;
        assert(event.size >= sizeof(rts));
        std::memcpy(&rts, event.payload.data(), sizeof(rts));
        msg.rdv_size = rts.size;
        msg.rdv_sender_id = rts.sender_id;
        msg.rdv_crc = rts.crc;
      } else if (event.size > 0) {
        msg.payload = std::move(event.payload);
      }
      const std::uint32_t seq = imm_arg(event.imm);
      std::lock_guard<common::SpinMutex> guard(match_mutex_);
      ReorderState& reorder = reorder_[event.src];
      if (seq == reorder.next_seq) {
        match_or_stash_unexpected(event.src, std::move(msg));
        ++reorder.next_seq;
        while (!reorder.stash.empty() &&
               reorder.stash.begin()->first == reorder.next_seq) {
          match_or_stash_unexpected(event.src,
                                    std::move(reorder.stash.begin()->second));
          reorder.stash.erase(reorder.stash.begin());
          ++reorder.next_seq;
        }
      } else {
        reorder.stash.emplace(seq, std::move(msg));
      }
      break;
    }
    case MsgKind::kCts: {
      CtsPayload cts;
      assert(event.size >= sizeof(cts));
      std::memcpy(&cts, event.payload.data(), sizeof(cts));
      std::shared_ptr<detail::ReqState> req;
      const std::byte* data = nullptr;
      std::size_t len = 0;
      {
        std::lock_guard<common::SpinMutex> guard(rdv_mutex_);
        auto it = rdv_sends_.find(cts.sender_id);
        if (it == rdv_sends_.end()) {
          AMTNET_LOG_ERROR("minimpi: CTS for unknown rendezvous id ",
                           cts.sender_id);
          return;
        }
        req = it->second.req;
        data = it->second.data;
        len = std::min<std::size_t>(it->second.len, cts.max_len);
        rdv_sends_.erase(it);
      }
      const fabric::MrKey rkey{event.src, cts.mr_id};
      // The fabric copies the payload synchronously, so a kRetry can simply
      // be retried from the deferred queue without keeping rdv state alive.
      if (nic_.post_write_imm(event.src, rkey, 0, data, len,
                              make_imm(MsgKind::kFin, 0, cts.recv_id)) ==
          common::Status::kOk) {
        mark_done(req);
      } else {
        // Rare: TX window full at CTS time. Fall back to buffering the data
        // as a deferred write by re-posting from progress.
        std::vector<std::byte> copy(data, data + len);
        std::lock_guard<common::SpinMutex> guard(deferred_mutex_);
        DeferredCtrl ctrl;
        ctrl.dst = event.src;
        ctrl.imm = make_imm(MsgKind::kFin, 0, cts.recv_id);
        ctrl.payload = std::move(copy);
        ctrl.complete_on_send = req;
        ctrl.write_mr_id = cts.mr_id;
        ctrl.is_write = true;
        deferred_.push_back(std::move(ctrl));
      }
      break;
    }
    default:
      AMTNET_LOG_ERROR("minimpi: unexpected message kind ",
                       static_cast<int>(kind));
  }
}

void Comm::match_or_stash_unexpected(Rank src, StashedMsg&& msg) {
  // Called with match_mutex_ held; delivers the message to the first
  // matching posted receive (MPI's non-overtaking rule) or stores it on the
  // unexpected list in arrival order.
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    const auto& req = *it;
    if ((req->want_src == kAnySource ||
         static_cast<Rank>(req->want_src) == src) &&
        req->want_tag == msg.tag) {
      auto matched = req;
      posted_recvs_.erase(it);
      if (msg.is_rts) {
        start_recv_rendezvous(matched, src, msg.tag, msg.rdv_size,
                              msg.rdv_sender_id, msg.rdv_crc);
      } else {
        complete_recv_eager(matched, src, msg.tag, msg.payload.data(),
                            msg.payload.size());
      }
      return;
    }
  }
  UnexpectedMsg unexpected;
  unexpected.src = src;
  unexpected.tag = msg.tag;
  unexpected.is_rts = msg.is_rts;
  unexpected.payload = std::move(msg.payload);
  unexpected.rdv_size = msg.rdv_size;
  unexpected.rdv_sender_id = msg.rdv_sender_id;
  unexpected.rdv_crc = msg.rdv_crc;
  unexpected_.push_back(std::move(unexpected));
  ctr_unexpected_.add();
}

void Comm::complete_recv_eager(const std::shared_ptr<detail::ReqState>& req,
                               Rank src, Tag tag, const std::byte* data,
                               std::size_t len) {
  if (len > req->maxlen) {
    AMTNET_LOG_WARN("minimpi: truncating ", len, "-byte message to ",
                    req->maxlen);
    len = req->maxlen;
  }
  if (len > 0) std::memcpy(req->buf, data, len);
  req->src = static_cast<int>(src);
  req->tag = tag;
  req->size = len;
  mark_done(req);
}

void Comm::start_recv_rendezvous(
    const std::shared_ptr<detail::ReqState>& req, Rank src, Tag tag,
    std::size_t size, std::uint32_t sender_id, std::uint32_t crc) {
  req->src = static_cast<int>(src);
  req->tag = tag;
  const fabric::MrKey mr = nic_.register_memory(req->buf, req->maxlen);
  std::uint32_t recv_id;
  {
    std::lock_guard<common::SpinMutex> guard(rdv_mutex_);
    recv_id = next_rdv_id_++;
    rdv_recvs_[recv_id] = RdvRecv{req, mr, size, crc};
  }
  CtsPayload cts{mr.id, req->maxlen, sender_id, recv_id};
  std::vector<std::byte> payload(sizeof(cts));
  std::memcpy(payload.data(), &cts, sizeof(cts));
  send_ctrl(src, make_imm(MsgKind::kCts, 0, sender_id), std::move(payload));
}

}  // namespace minimpi
