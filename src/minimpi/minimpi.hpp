// minimpi — a miniature MPI-style two-sided messaging library over the
// simulated fabric. It stands in for OpenMPI 4.1.5 / UCX 1.14.0 in the paper.
//
// Semantics reproduced:
//   * tagged isend/irecv with MPI_ANY_SOURCE, FIFO (non-overtaking) matching
//     per source, request objects tested with test(),
//   * eager protocol below `eager_threshold`, rendezvous (RTS/CTS/RDMA
//     write-with-immediate) above it,
//   * MPI_THREAD_MULTIPLE: every call is thread-safe.
//
// The performance model reproduced — the paper's key finding — is the
// concurrency discipline: in LockMode::kCoarseBlocking (the default,
// modelling the `ucp_progress` blocking mutex the paper's profiles blame),
// every isend/irecv/test acquires ONE blocking mutex and drives progress
// under it. Many worker threads calling MPI_Test therefore convoy on that
// lock. LockMode::kFineGrained keeps only the internal fine-grained locks and
// exists for the lock-granularity ablation benchmark.
//
// Ordering: the fabric reorders across rails, so minimpi enforces MPI's
// non-overtaking rule itself with per-destination sequence numbers and a
// receive-side reorder stage — the same mechanism real transports use.
// (Limit: 2^32 messages per directed pair per run, far above any workload
// here.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/spinlock.hpp"
#include "common/status.hpp"
#include "fabric/nic.hpp"
#include "fabric/reliable.hpp"

namespace minimpi {

using Rank = fabric::Rank;
using Tag = std::int32_t;

inline constexpr int kAnySource = -1;
/// Exclusive upper bound for user tags (24 bits travel in the immediate).
inline constexpr Tag kTagUpperBound = 1 << 24;

enum class LockMode {
  kCoarseBlocking,  // one blocking mutex around everything (UCX-like)
  kFineGrained,     // internal fine-grained locks only (ablation)
};

struct Config {
  std::size_t eager_threshold = 8192;  // bytes; above this use rendezvous
  LockMode lock_mode = LockMode::kCoarseBlocking;
};

namespace detail {
struct ReqState {
  std::atomic<bool> done{false};
  // Filled in on completion of receives:
  int src = -1;
  Tag tag = -1;
  std::size_t size = 0;
  // Receive posting info:
  std::byte* buf = nullptr;
  std::size_t maxlen = 0;
  int want_src = kAnySource;
  Tag want_tag = -1;
  bool is_recv = false;
};
}  // namespace detail

/// Nonblocking-operation handle (MPI_Request analogue). Copyable; all copies
/// refer to the same operation.
class Request {
 public:
  Request() = default;

  bool valid() const { return state_ != nullptr; }
  /// Completion flag only — does NOT make progress; use Comm::test().
  bool done() const {
    return state_ && state_->done.load(std::memory_order_acquire);
  }
  /// For completed receives: actual source / tag / byte count.
  int source() const { return state_->src; }
  Tag tag() const { return state_->tag; }
  std::size_t size() const { return state_->size; }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::ReqState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::ReqState> state_;
};

/// Per-rank communicator endpoint (MPI_COMM_WORLD analogue). One per
/// simulated locality, all sharing one fabric::Fabric.
class Comm {
 public:
  Comm(fabric::Fabric& fabric, Rank rank, Config config = {});
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  Rank rank() const { return rank_; }
  Rank world_size() const { return fabric_.num_ranks(); }
  const Config& config() const { return config_; }

  /// Nonblocking send. The eager path copies `buf` before returning; the
  /// rendezvous path requires `buf` to stay valid until test() reports done.
  Request isend(const void* buf, std::size_t len, Rank dst, Tag tag);

  /// Nonblocking receive into `buf` (capacity `maxlen`). `src` may be
  /// kAnySource. Messages longer than `maxlen` are truncated (logged).
  Request irecv(void* buf, std::size_t maxlen, int src, Tag tag);

  /// Tests one request for completion, driving progress as a side effect —
  /// this is where coarse-lock convoying shows up, as in MPI_Test.
  bool test(Request& request);

  /// Explicitly drive communication progress.
  void progress();

  /// Number of completed operations so far (tests/benchmarks).
  std::uint64_t completed_ops() const { return ctr_completed_.value(); }

 private:
  struct UnexpectedMsg {
    Rank src;
    Tag tag;
    bool is_rts = false;
    std::vector<std::byte> payload;   // eager data
    std::size_t rdv_size = 0;         // RTS only
    std::uint32_t rdv_sender_id = 0;  // RTS only
    std::uint32_t rdv_crc = 0;        // RTS only: payload CRC (integrity)
  };

  struct StashedMsg {  // out-of-order arrival awaiting its turn
    Tag tag;
    bool is_rts = false;
    std::vector<std::byte> payload;
    std::size_t rdv_size = 0;
    std::uint32_t rdv_sender_id = 0;
    std::uint32_t rdv_crc = 0;
  };

  struct RdvSend {  // sender-side pending rendezvous
    const std::byte* data;
    std::size_t len;
    std::shared_ptr<detail::ReqState> req;
  };

  struct RdvRecv {  // receiver-side pending rendezvous
    std::shared_ptr<detail::ReqState> req;
    fabric::MrKey mr;
    std::size_t size;
    std::uint32_t expected_crc = 0;  // sender's payload CRC (integrity mode)
  };

  struct DeferredCtrl {  // message that hit TX back-pressure
    Rank dst = 0;
    std::uint64_t imm = 0;
    std::vector<std::byte> payload;
    std::shared_ptr<detail::ReqState> complete_on_send;  // may be null
    bool is_write = false;          // true: retry as RDMA write-with-imm
    std::uint64_t write_mr_id = 0;  // rkey id at dst (is_write only)
  };

  void progress_locked();
  void handle_event(fabric::RxEvent&& event);
  void deliver_in_order(Rank src, StashedMsg&& msg);
  void match_or_stash_unexpected(Rank src, StashedMsg&& msg);
  void complete_recv_eager(const std::shared_ptr<detail::ReqState>& req,
                           Rank src, Tag tag, const std::byte* data,
                           std::size_t len);
  void start_recv_rendezvous(const std::shared_ptr<detail::ReqState>& req,
                             Rank src, Tag tag, std::size_t size,
                             std::uint32_t sender_id, std::uint32_t crc);
  void send_ctrl(Rank dst, std::uint64_t imm, std::vector<std::byte> payload,
                 std::shared_ptr<detail::ReqState> complete_on_send = nullptr);
  void retry_deferred();
  void mark_done(const std::shared_ptr<detail::ReqState>& req);

  fabric::Fabric& fabric_;
  fabric::Nic& nic_;
  const Rank rank_;
  const Config config_;
  // Retransmit/dedup/CRC sublayer for every two-sided datagram (eager AND
  // the RTS/CTS control plane); passthrough when the fault config is clean.
  // The one-sided FIN write is covered end-to-end instead: the RTS carries
  // the payload CRC, verified when the write lands.
  fabric::ReliableEndpoint rel_;
  const bool integrity_on_;

  // The coarse blocking lock (LockMode::kCoarseBlocking): a UCX-style pure
  // spin lock, matching the ucp_progress lock the paper's profiles blame.
  // In fine-grained mode it is bypassed and the members below rely on their
  // own locks.
  common::UcxStyleSpinMutex big_lock_;

  // Matching state. One spin mutex models the (comparatively cheap) matching
  // lock inside real transports; in coarse mode it is uncontended.
  common::SpinMutex match_mutex_;
  std::list<std::shared_ptr<detail::ReqState>> posted_recvs_;
  std::list<UnexpectedMsg> unexpected_;

  // Per-source reorder stage (guarded by match_mutex_).
  struct ReorderState {
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, StashedMsg> stash;
  };
  std::vector<ReorderState> reorder_;

  // Per-destination send sequence numbers.
  std::vector<common::CachePadded<std::atomic<std::uint32_t>>> tx_seq_;

  // Rendezvous tracking (guarded by rdv_mutex_).
  common::SpinMutex rdv_mutex_;
  std::uint32_t next_rdv_id_ = 1;
  std::map<std::uint32_t, RdvSend> rdv_sends_;
  std::map<std::uint32_t, RdvRecv> rdv_recvs_;

  // Control messages awaiting TX credit (guarded by deferred_mutex_).
  common::SpinMutex deferred_mutex_;
  std::deque<DeferredCtrl> deferred_;

  // Progress serialisation for fine-grained mode: overlapping progress calls
  // skip instead of queueing (the try-lock discipline).
  common::SpinMutex progress_mutex_;

  // Metrics under minimpi/comm<rank>/... in the Fabric's registry. The lock
  // wait histogram measures time spent acquiring big_lock_ — the paper §4b
  // convoy — from every isend/irecv/test/progress call in coarse mode.
  telemetry::Counter& ctr_completed_;
  telemetry::Counter& ctr_unexpected_;  // arrivals stashed with no recv posted
  telemetry::Histogram& hist_lock_wait_ns_;
};

/// Convenience bundle: a fabric plus one Comm per rank, for tests/benches.
class World {
 public:
  explicit World(const fabric::Config& fabric_config, Config comm_config = {})
      : fabric_(fabric_config) {
    for (Rank r = 0; r < fabric_.num_ranks(); ++r) {
      comms_.push_back(std::make_unique<Comm>(fabric_, r, comm_config));
    }
  }

  fabric::Fabric& fabric() { return fabric_; }
  Comm& comm(Rank rank) { return *comms_[rank]; }
  Rank size() const { return fabric_.num_ranks(); }

 private:
  fabric::Fabric fabric_;
  std::vector<std::unique_ptr<Comm>> comms_;
};

}  // namespace minimpi
