// Open-loop load generator for the serving-path experiments.
//
// Closed-loop benchmarks (like the §4.1 message-rate harness) let a slow
// server throttle its own clients, which hides queueing delay: the classic
// coordinated-omission trap. This generator is open-loop — every request's
// arrival time is drawn up front from a seeded stochastic process, and a
// request's latency is measured from its *scheduled* arrival, not from the
// moment the generator got around to sending it. A server past saturation
// therefore shows the true unbounded queueing tail instead of a flat line.
//
// Shape of a run:
//   * build_schedule() turns an ArrivalConfig into absolute arrival offsets,
//     a pure function of the seed (bit-for-bit reproducible),
//   * `generators` tasks on locality 0 fire the requests at their offsets
//     through Locality::try_apply (fire-and-forget, admissible — the
//     admission policy may shed them),
//   * the sink action runs at the destination and records the one-way
//     sojourn latency (delivery time minus scheduled arrival) into a
//     telemetry HDR histogram — no response parcel, so the measured path is
//     exactly the serving path under test,
//   * the run ends when every accepted request was either delivered or
//     deadline-dropped; Result carries the conservation check
//     (accepted == completed + deadline_drops, generated == accepted + shed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fabric/fault.hpp"
#include "telemetry/registry.hpp"

namespace loadgen {

/// Arrival process of the offered load. Both processes target the same
/// long-run rate; kBurst concentrates it into on/off bursts (a two-state
/// MMPP), which stresses the admission bound far harder at equal load.
struct ArrivalConfig {
  enum class Process : std::uint8_t { kPoisson, kBurst };
  Process process = Process::kPoisson;
  double rate_rps = 1000.0;    // long-run offered load, requests/second
  std::uint64_t seed = 2026;   // AMTNET_LOADGEN_SEED overrides at run time
  // kBurst shape: exponential ON periods of mean burst_on_ms during which
  // arrivals are Poisson at rate_rps / burst_duty, separated by exponential
  // OFF periods sized so the ON fraction is burst_duty.
  double burst_duty = 0.25;
  double burst_on_ms = 2.0;
};

/// Absolute arrival offsets (nanoseconds from run start), one per request,
/// non-decreasing. Pure function of `config` and `n`.
std::vector<std::uint64_t> build_schedule(const ArrivalConfig& config,
                                          std::size_t n);

/// One entry of the request-size mix: `weight` is a relative frequency.
struct SizeMixEntry {
  std::size_t bytes = 64;
  double weight = 1.0;
};

/// Parses a size-mix string like "64:9,4096:1" (bytes:weight pairs).
std::vector<SizeMixEntry> parse_size_mix(const std::string& text);

struct Params {
  std::string parcelport = "lci_psr_cq_pin_i";
  std::uint32_t localities = 2;  // requests fan out to ranks 1..L-1
  unsigned workers = 2;          // worker threads per locality
  std::size_t requests = 4000;   // offered requests (schedule length)
  ArrivalConfig arrival;
  std::vector<SizeMixEntry> size_mix;  // empty -> single 64-byte class
  std::size_t zero_copy_threshold = 8192;
  std::size_t max_connections = 8192;
  // Shaped fabric (zero_time off) so saturation is a property of the model,
  // not of the host machine: capacity ~= bandwidth / mean request size.
  // The defaults put the knee near a few thousand requests/s.
  double bandwidth_gbps = 0.13;
  double latency_us = 100.0;
  unsigned fabric_rails = 1;
  fabric::FaultConfig faults;  // compose with the chaos regimes (PR-3)
};

struct Result {
  // Request accounting (exact, from the runtime's admission atomics).
  std::uint64_t generated = 0;       // requests the schedule offered
  std::uint64_t accepted = 0;        // admitted into the parcel layer
  std::uint64_t shed = 0;            // refused at the admission bound
  std::uint64_t deadline_drops = 0;  // dropped stale from a parcel queue
  std::uint64_t completed = 0;       // delivered and executed at the sink
  std::uint64_t block_waits = 0;     // sends that waited (block policy)
  std::int64_t peak_queue_depth = 0;
  /// accepted == completed + deadline_drops and
  /// generated == accepted + shed, checked at quiescence.
  bool conserved = false;
  /// FNV-1a over the arrival offsets actually used (after the
  /// AMTNET_LOADGEN_SEED override): equal hash == bit-for-bit equal schedule.
  std::uint64_t schedule_hash = 0;

  double offered_kps = 0.0;  // configured long-run arrival rate
  double goodput_kps = 0.0;  // completed / wall-clock
  // Sojourn latency (scheduled arrival -> sink execution), from the run's
  // telemetry HDR histogram. Zero in AMTNET_TELEMETRY_DISABLED builds.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  /// p99 of the generator's own firing lateness vs the schedule — high
  /// values mean the generator (not the server) was the bottleneck.
  double gen_lag_p99_us = 0.0;
  double wall_s = 0.0;
};

/// Runs one open-loop experiment. Admission policy comes from the parcelport
/// config tokens (shed<N>/block<N>/dl<N>) or the AMTNET_ADMIT_* knobs; the
/// arrival seed can be pinned with AMTNET_LOADGEN_SEED. One run at a time
/// per process (the sink channels through globals, like the bench harness).
Result run_open_loop(const Params& params);

/// Installs a callback receiving the telemetry snapshot of each run, taken
/// just before the runtime stops (the bench harness wires its own sink in
/// here so suite probes work). Pass nullptr to remove.
void set_snapshot_sink(std::function<void(const telemetry::Snapshot&)> sink);

}  // namespace loadgen
