#include "loadgen/loadgen.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "stack/stack.hpp"

namespace loadgen {

namespace {

// One run active at a time: the sink action reaches the run's state through
// these globals, the same channel the bench harness uses for its actions.
std::atomic<std::int64_t> g_t0_ns{0};
std::atomic<std::uint64_t> g_completed{0};
telemetry::Histogram* g_latency_hist = nullptr;

std::function<void(const telemetry::Snapshot&)> g_snapshot_sink;

/// The serving action. Runs at the destination locality; records the one-way
/// sojourn from the request's *scheduled* arrival (not its send time — that
/// is the open-loop, no-coordinated-omission contract) to execution here.
void openloop_sink(std::uint64_t offset_ns, std::vector<std::uint8_t> payload) {
  (void)payload;
  const common::Nanos scheduled =
      g_t0_ns.load(std::memory_order_relaxed) +
      static_cast<common::Nanos>(offset_ns);
  const common::Nanos now = common::now_ns();
  const std::uint64_t sojourn =
      now > scheduled ? static_cast<std::uint64_t>(now - scheduled) : 0;
  if (g_latency_hist != nullptr) g_latency_hist->record(sojourn);
  g_completed.fetch_add(1, std::memory_order_release);
}

/// Deterministic per-request size-class pick: a pure hash of (seed, index),
/// independent of thread interleaving so the request stream is reproducible.
std::size_t pick_class(std::uint64_t seed, std::size_t index,
                       const std::vector<double>& cumulative) {
  if (cumulative.size() <= 1) return 0;
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1));
  const double u = common::unit_open_from_bits(common::splitmix64(state));
  for (std::size_t c = 0; c < cumulative.size(); ++c) {
    if (u < cumulative[c]) return c;
  }
  return cumulative.size() - 1;
}

}  // namespace

std::vector<std::uint64_t> build_schedule(const ArrivalConfig& config,
                                          std::size_t n) {
  std::vector<std::uint64_t> schedule;
  schedule.reserve(n);
  if (n == 0) return schedule;
  if (config.rate_rps <= 0.0) {
    throw std::invalid_argument("loadgen: rate_rps must be positive");
  }
  common::Xoshiro256 rng(config.seed);
  if (config.process == ArrivalConfig::Process::kPoisson) {
    const double gap_mean_ns = 1e9 / config.rate_rps;
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.next_exponential(gap_mean_ns);
      schedule.push_back(static_cast<std::uint64_t>(t));
    }
    return schedule;
  }
  // Two-state MMPP: exponential ON windows with Poisson arrivals at
  // rate/duty, exponential OFF windows sized so the ON fraction is `duty`
  // (long-run rate stays rate_rps). A gap overshooting the ON window is
  // discarded — memoryless, so the process is unchanged.
  const double duty = std::clamp(config.burst_duty, 0.01, 1.0);
  const double on_mean_ns = std::max(config.burst_on_ms, 1e-3) * 1e6;
  const double off_mean_ns = on_mean_ns * (1.0 - duty) / duty;
  const double gap_mean_ns = duty * 1e9 / config.rate_rps;
  double t = 0.0;
  while (schedule.size() < n) {
    const double on_end = t + rng.next_exponential(on_mean_ns);
    for (;;) {
      t += rng.next_exponential(gap_mean_ns);
      if (t >= on_end) break;
      schedule.push_back(static_cast<std::uint64_t>(t));
      if (schedule.size() == n) return schedule;
    }
    t = on_end;
    if (off_mean_ns > 0.0) t += rng.next_exponential(off_mean_ns);
  }
  return schedule;
}

std::vector<SizeMixEntry> parse_size_mix(const std::string& text) {
  std::vector<SizeMixEntry> mix;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    SizeMixEntry entry;
    const std::size_t colon = item.find(':');
    entry.bytes = static_cast<std::size_t>(
        std::strtoull(item.c_str(), nullptr, 10));
    if (colon != std::string::npos) {
      entry.weight = std::strtod(item.c_str() + colon + 1, nullptr);
    }
    if (entry.bytes == 0 || entry.weight <= 0.0) {
      throw std::invalid_argument("loadgen: bad size-mix entry '" + item +
                                  "' (want bytes:weight, both positive)");
    }
    mix.push_back(entry);
  }
  return mix;
}

void set_snapshot_sink(std::function<void(const telemetry::Snapshot&)> sink) {
  g_snapshot_sink = std::move(sink);
}

Result run_open_loop(const Params& params) {
  if (params.localities < 2) {
    throw std::invalid_argument("loadgen: need at least 2 localities");
  }
  ArrivalConfig arrival = params.arrival;
  if (const char* s = std::getenv("AMTNET_LOADGEN_SEED")) {
    arrival.seed = std::strtoull(s, nullptr, 10);
  }

  amtnet::StackOptions options;
  options.parcelport = params.parcelport;
  options.num_localities = static_cast<amt::Rank>(params.localities);
  options.threads_per_locality = params.workers;
  options.platform = "loopback";
  options.zero_copy_threshold = params.zero_copy_threshold;
  options.max_connections = params.max_connections;
  options.fabric_rails = params.fabric_rails;
  options.faults = params.faults;
  amt::RuntimeConfig config = amtnet::make_runtime_config(options);
  // Shaped fabric: wall-clock latency/bandwidth gating makes the saturation
  // capacity a property of the model (bandwidth / mean request size), not of
  // the host machine, so the latency knee lands at the same offered load on
  // every machine.
  config.fabric.zero_time = false;
  config.fabric.latency_us = params.latency_us;
  config.fabric.bandwidth_gbps = params.bandwidth_gbps;

  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  amt::Locality& loc0 = runtime.locality(0);

  const std::vector<std::uint64_t> schedule =
      build_schedule(arrival, params.requests);

  // Size mix: payload buffers per class plus the cumulative weight table the
  // per-request hash picks against.
  std::vector<SizeMixEntry> mix = params.size_mix;
  if (mix.empty()) mix.push_back(SizeMixEntry{});
  double total_weight = 0.0;
  for (const SizeMixEntry& entry : mix) total_weight += entry.weight;
  std::vector<double> cumulative;
  std::vector<std::vector<std::uint8_t>> payloads;
  double acc = 0.0;
  for (const SizeMixEntry& entry : mix) {
    acc += entry.weight / total_weight;
    cumulative.push_back(acc);
    payloads.emplace_back(entry.bytes, 0x42);
  }

  g_completed.store(0);
  g_latency_hist = &runtime.telemetry().histogram("loadgen/latency_ns");
  telemetry::Histogram& lag_hist =
      runtime.telemetry().histogram("loadgen/gen_lag_ns");

  std::atomic<std::uint64_t> accepted_local{0};
  std::atomic<std::uint64_t> shed_local{0};
  std::atomic<bool> pacer_done{false};
  const amt::Rank fanout = static_cast<amt::Rank>(params.localities - 1);
  const std::uint64_t seed = arrival.seed;

  // One pacer task owns the clock; each due request becomes its own spawned
  // send task so the sends spread across all workers. (Two pacer tasks would
  // deadlock the pacing: wait_until executes pending tasks inline, so one
  // pacer can swallow its sibling and run that sibling's whole stream before
  // resuming its own, hundreds of milliseconds late.)
  const common::Nanos t0 = common::now_ns();
  g_t0_ns.store(t0);
  loc0.spawn([&, t0] {
    amt::Locality& here = amt::here();
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const common::Nanos due = t0 + static_cast<common::Nanos>(schedule[i]);
      here.scheduler().wait_until(
          [due] { return common::now_ns() >= due; });
      lag_hist.record(static_cast<std::uint64_t>(common::now_ns() - due));
      here.spawn([&, i] {
        const std::size_t cls = pick_class(seed, i, cumulative);
        const amt::Rank dst = 1 + static_cast<amt::Rank>(i % fanout);
        // try_apply under the block policy waits inside (backpressure slows
        // the client — exactly the cost the policy is meant to expose);
        // under shed or deadline it reports refusal.
        if (amt::here().try_apply<&openloop_sink>(dst, schedule[i],
                                                  payloads[cls])) {
          accepted_local.fetch_add(1, std::memory_order_relaxed);
        } else {
          shed_local.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    pacer_done.store(true, std::memory_order_release);
  });

  // Quiescence: every offered request resolved (accepted or shed), and every
  // accepted request either executed at its sink or was deadline-dropped
  // from a parcel queue. This is the conservation invariant the whole
  // subsystem is audited against.
  loc0.scheduler().wait_until([&] {
    if (!pacer_done.load(std::memory_order_acquire)) return false;
    const std::uint64_t accepted =
        accepted_local.load(std::memory_order_relaxed);
    const std::uint64_t shed = shed_local.load(std::memory_order_relaxed);
    if (accepted + shed != schedule.size()) return false;
    const amt::AdmissionStats stats = loc0.admission_stats();
    return g_completed.load(std::memory_order_acquire) +
               stats.deadline_drops >=
           accepted;
  });
  const common::Nanos t_end = common::now_ns();

  Result result;
  result.generated = schedule.size();
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a over the offsets
  for (const std::uint64_t offset : schedule) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      hash ^= (offset >> (8 * byte)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  }
  result.schedule_hash = hash;
  result.accepted = accepted_local.load();
  result.shed = shed_local.load();
  result.completed = g_completed.load();
  const amt::AdmissionStats stats = loc0.admission_stats();
  result.deadline_drops = stats.deadline_drops;
  result.block_waits = stats.block_waits;
  result.peak_queue_depth = stats.peak_queue_depth;
  result.conserved =
      result.generated == result.accepted + result.shed &&
      result.accepted == result.completed + result.deadline_drops &&
      // When admission is on, the runtime's own tallies must agree with the
      // generator's view of its try_apply outcomes.
      (!loc0.admission_config().on() ||
       (stats.accepted == result.accepted && stats.shed == result.shed));

  result.offered_kps = arrival.rate_rps / 1e3;
  result.wall_s = common::ns_to_s(t_end - t0);
  result.goodput_kps = static_cast<double>(result.completed) /
                       std::max(result.wall_s, 1e-9) / 1e3;
  std::array<std::uint64_t, 3> ns{};
  g_latency_hist->percentiles({{0.5, 0.99, 0.999}}, ns);
  result.p50_us = static_cast<double>(ns[0]) / 1e3;
  result.p99_us = static_cast<double>(ns[1]) / 1e3;
  result.p999_us = static_cast<double>(ns[2]) / 1e3;
  result.max_us = static_cast<double>(g_latency_hist->max()) / 1e3;
  result.gen_lag_p99_us =
      static_cast<double>(lag_hist.percentile(0.99)) / 1e3;

  if (g_snapshot_sink) g_snapshot_sink(runtime.telemetry().snapshot());
  g_latency_hist = nullptr;  // the registry dies with the runtime
  runtime.stop();
  return result;
}

}  // namespace loadgen
