// Suite execution: the uniform warmup + median-of-N repetition policy every
// registered benchmark shares (previously each bench main hand-rolled its
// own loop, with diverging counts and no warmup at all).
#pragma once

#include "expdriver/experiment.hpp"

namespace expdriver {

struct DriveOptions {
  bool print_csv = true;  // per-point CSV rows grouped by benchmark shape
};

/// Runs every point of `spec` through `runner`: `env.warmup` discarded
/// runs, then `env.repetitions` recorded samples per point. The returned
/// result carries median/mean/stddev plus the raw samples per metric and
/// injects a "kind" label into every point.
SuiteResult run_suite(const SuiteSpec& spec, const RunEnv& env,
                      const PointRunner& runner,
                      const DriveOptions& options = {});

/// Scales a base count by env.scale, clamped to >= 1 (a scale small enough
/// to round a count to zero previously hung the rate benchmark and divided
/// by zero in the proxy app).
std::size_t scaled_count(std::size_t base, double scale);

}  // namespace expdriver
