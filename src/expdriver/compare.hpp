// Noise-aware baseline comparator behind `bench_suite --check`: medians of
// the current run vs a committed baseline, per-metric relative tolerance
// bands, direction-aware (only changes in the *worse* direction fail).
#pragma once

#include <string>
#include <vector>

#include "expdriver/experiment.hpp"

namespace expdriver {

struct CompareOptions {
  /// Multiplies every metric's tolerance band; CI gates run wide (machine-
  /// to-machine variance), local checks run at 1.0.
  double tolerance_scale = 1.0;
};

struct CompareReport {
  std::vector<std::string> regressions;   // non-empty => gate fails
  std::vector<std::string> notes;         // improvements, skipped metrics
  bool failed() const { return !regressions.empty(); }
};

/// Compares `current` against `baseline` for the suite described by `spec`
/// (nullptr: per-kind default metric policy only). Schema or run-environment
/// mismatches and disappearing points are regressions — a gate that
/// silently compares different experiments is worse than one that fails.
CompareReport compare_results(const SuiteSpec* spec,
                              const SuiteResult& baseline,
                              const SuiteResult& current,
                              const CompareOptions& options = {});

}  // namespace expdriver
