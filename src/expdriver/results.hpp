// SuiteResult <-> schema-versioned JSON (the BENCH_<suite>.json files), plus
// the small file helpers every consumer shares.
#pragma once

#include <optional>
#include <string>

#include "expdriver/experiment.hpp"

namespace expdriver {

/// Pretty-printed (one point per line), deterministic serialization:
/// serializing the parse of a serialized result reproduces it byte-for-byte.
std::string results_to_json(const SuiteResult& result);

/// std::nullopt on malformed JSON or a schema this build does not speak.
std::optional<SuiteResult> results_from_json(const std::string& text);

/// Canonical file name for a suite's results.
std::string results_file_name(const std::string& suite_name);

std::optional<std::string> read_file(const std::string& path);
bool write_file(const std::string& path, const std::string& content);

}  // namespace expdriver
