#include "expdriver/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace expdriver {

std::size_t scaled_count(std::size_t base, double scale) {
  const double scaled = static_cast<double>(base) * scale;
  if (scaled <= 1.0) return 1;
  return static_cast<std::size_t>(std::llround(scaled));
}

namespace {

MetricResult summarize(std::vector<double> samples) {
  MetricResult result;
  if (samples.empty()) return result;
  for (double s : samples) result.mean += s;
  result.mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - result.mean) * (s - result.mean);
  result.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  result.median = n % 2 == 1 ? sorted[n / 2]
                             : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  result.samples = std::move(samples);
  return result;
}

void print_group_header(const PointResult& point) {
  std::string header;
  for (const auto& [key, value] : point.labels) {
    header += key;
    header += ',';
  }
  for (const auto& [name, metric] : point.metrics) {
    header += name;
    header += ',';
    header += name;
    header += "_stddev,";
  }
  if (!header.empty()) header.pop_back();
  std::printf("%s\n", header.c_str());
}

void print_row(const PointResult& point) {
  std::string row;
  char buf[64];
  for (const auto& [key, value] : point.labels) {
    row += value;
    row += ',';
  }
  for (const auto& [name, metric] : point.metrics) {
    std::snprintf(buf, sizeof(buf), "%.3f,%.3f,", metric.median,
                  metric.stddev);
    row += buf;
  }
  if (!row.empty()) row.pop_back();
  std::printf("%s\n", row.c_str());
  std::fflush(stdout);
}

}  // namespace

SuiteResult run_suite(const SuiteSpec& spec, const RunEnv& env,
                      const PointRunner& runner,
                      const DriveOptions& options) {
  SuiteResult result;
  result.suite = spec.name;
  result.figure = spec.figure;
  // Stamp backend identity so shm results can never pass for sim baselines
  // (the comparator refuses cross-backend gating). The env knobs are how
  // amtnet_launch configures ranks, so they are authoritative here.
  if (const char* backend = std::getenv("AMTNET_BACKEND");
      backend != nullptr && *backend != '\0') {
    result.backend = backend;
  }
  if (const char* rank = std::getenv("AMTNET_SHM_RANK");
      rank != nullptr && *rank != '\0') {
    result.local_rank = std::atoi(rank);
  }
  result.env = env;
  result.points.reserve(spec.points.size());

  PointKind group_kind = PointKind::kRate;
  bool group_open = false;
  for (const PointSpec& point : spec.points) {
    for (int i = 0; i < env.warmup; ++i) {
      (void)runner(point, env);
    }
    // metric name -> samples, preserving the runner's emission order.
    std::vector<std::pair<std::string, std::vector<double>>> samples;
    for (int rep = 0; rep < env.repetitions; ++rep) {
      const Sample sample = runner(point, env);
      for (const auto& [name, value] : sample) {
        auto it = std::find_if(samples.begin(), samples.end(),
                               [&](const auto& s) { return s.first == name; });
        if (it == samples.end()) {
          samples.push_back({name, {value}});
        } else {
          it->second.push_back(value);
        }
      }
    }

    PointResult point_result;
    point_result.labels = point.labels;
    point_result.labels["kind"] = point_kind_name(point.kind);
    for (auto& [name, metric_samples] : samples) {
      point_result.metrics.emplace_back(name,
                                        summarize(std::move(metric_samples)));
    }

    if (options.print_csv) {
      if (!group_open || group_kind != point.kind) {
        if (group_open) std::printf("\n");
        print_group_header(point_result);
        group_kind = point.kind;
        group_open = true;
      }
      print_row(point_result);
    }
    result.points.push_back(std::move(point_result));
  }

  if (spec.post_summary) spec.post_summary(result);
  return result;
}

}  // namespace expdriver
