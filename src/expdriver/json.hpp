// Minimal JSON value + recursive-descent parser for the experiment driver.
// Covers exactly the subset the driver emits (objects, arrays, strings,
// doubles, bools, null); object members preserve insertion order so a
// parse→serialize pass is deterministic. Not a general-purpose library —
// no surrogate-pair decoding, numbers are always doubles.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace expdriver {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool value);
  static Json number(double value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // Accessors return a neutral fallback on type mismatch; callers that need
  // to distinguish check type() first.
  bool as_bool() const { return type_ == Type::kBool && bool_; }
  double as_number() const { return type_ == Type::kNumber ? number_ : 0.0; }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Object member by key; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  void push_back(Json value) { items_.push_back(std::move(value)); }
  void set(std::string key, Json value);

  /// Compact single-line serialization. Doubles use %.17g so every value
  /// survives a parse→serialize round trip bit-exactly.
  std::string dump() const;

  /// Parses `text`; std::nullopt on any syntax error or trailing garbage.
  static std::optional<Json> parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Formats a double the way the driver serializes it (%.17g, with integral
/// values printed without exponent/decimals where possible).
std::string json_number_to_string(double value);

}  // namespace expdriver
