#include "expdriver/results.hpp"

#include <cstdio>

#include "expdriver/json.hpp"

namespace expdriver {

std::string results_file_name(const std::string& suite_name) {
  return "BENCH_" + suite_name + ".json";
}

namespace {

Json point_to_json(const PointResult& point) {
  Json j = Json::object();
  Json labels = Json::object();
  for (const auto& [key, value] : point.labels) {
    labels.set(key, Json::string(value));
  }
  j.set("labels", std::move(labels));
  Json metrics = Json::object();
  for (const auto& [name, metric] : point.metrics) {
    Json m = Json::object();
    m.set("median", Json::number(metric.median));
    m.set("mean", Json::number(metric.mean));
    m.set("stddev", Json::number(metric.stddev));
    Json samples = Json::array();
    for (double s : metric.samples) samples.push_back(Json::number(s));
    m.set("samples", std::move(samples));
    metrics.set(name, std::move(m));
  }
  j.set("metrics", std::move(metrics));
  return j;
}

}  // namespace

std::string results_to_json(const SuiteResult& result) {
  std::string out = "{\n";
  out += "  \"schema\": " + Json::string(result.schema).dump() + ",\n";
  out += "  \"suite\": " + Json::string(result.suite).dump() + ",\n";
  out += "  \"figure\": " + Json::string(result.figure).dump() + ",\n";
  // Backend identity is emitted only when it deviates from the historical
  // sim default, keeping every committed sim baseline byte-identical.
  if (result.backend != "sim") {
    out += "  \"backend\": " + Json::string(result.backend).dump() + ",\n";
  }
  if (result.local_rank >= 0) {
    out += "  \"local_rank\": " + std::to_string(result.local_rank) + ",\n";
  }
  out += "  \"env\": {\"scale\": " + json_number_to_string(result.env.scale) +
         ", \"repetitions\": " + std::to_string(result.env.repetitions) +
         ", \"warmup\": " + std::to_string(result.env.warmup) +
         ", \"workers\": " + std::to_string(result.env.workers) + "},\n";
  out += "  \"points\": [";
  bool first = true;
  for (const PointResult& point : result.points) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += point_to_json(point).dump();
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::optional<SuiteResult> results_from_json(const std::string& text) {
  const auto parsed = Json::parse(text);
  if (!parsed || parsed->type() != Json::Type::kObject) return std::nullopt;
  const Json* schema = parsed->find("schema");
  if (schema == nullptr || schema->as_string() != kResultSchema) {
    return std::nullopt;
  }
  SuiteResult result;
  result.schema = schema->as_string();
  if (const Json* suite = parsed->find("suite")) {
    result.suite = suite->as_string();
  }
  if (const Json* figure = parsed->find("figure")) {
    result.figure = figure->as_string();
  }
  if (const Json* backend = parsed->find("backend")) {
    result.backend = backend->as_string();
  }
  if (const Json* rank = parsed->find("local_rank")) {
    result.local_rank = static_cast<int>(rank->as_number());
  }
  if (const Json* env = parsed->find("env")) {
    if (const Json* v = env->find("scale")) result.env.scale = v->as_number();
    if (const Json* v = env->find("repetitions")) {
      result.env.repetitions = static_cast<int>(v->as_number());
    }
    if (const Json* v = env->find("warmup")) {
      result.env.warmup = static_cast<int>(v->as_number());
    }
    if (const Json* v = env->find("workers")) {
      result.env.workers = static_cast<unsigned>(v->as_number());
    }
  }
  const Json* points = parsed->find("points");
  if (points == nullptr || points->type() != Json::Type::kArray) {
    return std::nullopt;
  }
  for (const Json& point_json : points->items()) {
    PointResult point;
    if (const Json* labels = point_json.find("labels")) {
      for (const auto& [key, value] : labels->members()) {
        point.labels[key] = value.as_string();
      }
    }
    if (const Json* metrics = point_json.find("metrics")) {
      for (const auto& [name, metric_json] : metrics->members()) {
        MetricResult metric;
        if (const Json* v = metric_json.find("median")) {
          metric.median = v->as_number();
        }
        if (const Json* v = metric_json.find("mean")) {
          metric.mean = v->as_number();
        }
        if (const Json* v = metric_json.find("stddev")) {
          metric.stddev = v->as_number();
        }
        if (const Json* samples = metric_json.find("samples")) {
          for (const Json& s : samples->items()) {
            metric.samples.push_back(s.as_number());
          }
        }
        point.metrics.emplace_back(name, std::move(metric));
      }
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

}  // namespace expdriver
