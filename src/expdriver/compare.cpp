#include "expdriver/compare.hpp"

#include <cmath>
#include <cstdio>

namespace expdriver {

namespace {

std::string labels_to_string(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ' ';
    out += key + "=" + value;
  }
  return out;
}

const PointResult* find_point(const SuiteResult& result,
                              const Labels& labels) {
  for (const auto& point : result.points) {
    if (point.labels == labels) return &point;
  }
  return nullptr;
}

MetricSpec policy_for(const SuiteSpec* spec, const std::string& name) {
  if (spec != nullptr) return metric_spec_for(*spec, name);
  static const SuiteSpec empty;
  return metric_spec_for(empty, name);
}

}  // namespace

CompareReport compare_results(const SuiteSpec* spec,
                              const SuiteResult& baseline,
                              const SuiteResult& current,
                              const CompareOptions& options) {
  CompareReport report;
  char buf[512];

  if (baseline.schema != current.schema) {
    std::snprintf(buf, sizeof(buf), "schema mismatch: baseline %s vs %s",
                  baseline.schema.c_str(), current.schema.c_str());
    report.regressions.push_back(buf);
    return report;
  }
  if (baseline.suite != current.suite) {
    std::snprintf(buf, sizeof(buf), "suite mismatch: baseline %s vs %s",
                  baseline.suite.c_str(), current.suite.c_str());
    report.regressions.push_back(buf);
    return report;
  }
  // Numbers from different transport backends are different experiments: an
  // shm run must never be gated against a committed sim baseline (or vice
  // versa), however tempting the point labels make it look.
  if (baseline.backend != current.backend) {
    std::snprintf(buf, sizeof(buf),
                  "backend mismatch: baseline ran on '%s', current on '%s' — "
                  "refusing to gate across transport backends",
                  baseline.backend.c_str(), current.backend.c_str());
    report.regressions.push_back(buf);
    return report;
  }
  // Comparing runs at different scales or worker counts compares different
  // experiments; repetitions may differ (the median absorbs that).
  if (baseline.env.scale != current.env.scale ||
      baseline.env.workers != current.env.workers) {
    std::snprintf(buf, sizeof(buf),
                  "run environment mismatch: baseline scale=%g workers=%u vs "
                  "scale=%g workers=%u",
                  baseline.env.scale, baseline.env.workers, current.env.scale,
                  current.env.workers);
    report.regressions.push_back(buf);
    return report;
  }

  for (const PointResult& base_point : baseline.points) {
    const PointResult* cur_point = find_point(current, base_point.labels);
    if (cur_point == nullptr) {
      std::snprintf(buf, sizeof(buf), "[%s] point disappeared",
                    labels_to_string(base_point.labels).c_str());
      report.regressions.push_back(buf);
      continue;
    }
    for (const auto& [name, base_metric] : base_point.metrics) {
      const MetricSpec policy = policy_for(spec, name);
      if (!policy.gate) continue;
      const MetricResult* cur_metric = cur_point->metric(name);
      if (cur_metric == nullptr) {
        std::snprintf(buf, sizeof(buf), "[%s] metric %s disappeared",
                      labels_to_string(base_point.labels).c_str(),
                      name.c_str());
        report.regressions.push_back(buf);
        continue;
      }
      const double tolerance = policy.rel_tolerance * options.tolerance_scale;
      const double base = base_metric.median;
      const double cur = cur_metric->median;
      if (!(std::isfinite(base) && std::isfinite(cur)) || base == 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "[%s] %s not comparable (baseline %.3f, current %.3f)",
                      labels_to_string(base_point.labels).c_str(), name.c_str(),
                      base, cur);
        report.notes.push_back(buf);
        continue;
      }
      const double ratio = cur / base;
      const bool worse = policy.lower_is_better ? ratio > 1.0 + tolerance
                                                : ratio < 1.0 - tolerance;
      const bool better = policy.lower_is_better ? ratio < 1.0 - tolerance
                                                 : ratio > 1.0 + tolerance;
      if (worse) {
        std::snprintf(
            buf, sizeof(buf),
            "[%s] %s regressed: median %.3f -> %.3f (%+.1f%%, tolerance "
            "±%.0f%%)",
            labels_to_string(base_point.labels).c_str(), name.c_str(), base,
            cur, (ratio - 1.0) * 100.0, tolerance * 100.0);
        report.regressions.push_back(buf);
      } else if (better) {
        std::snprintf(buf, sizeof(buf),
                      "[%s] %s improved: median %.3f -> %.3f (%+.1f%%)",
                      labels_to_string(base_point.labels).c_str(),
                      name.c_str(), base, cur, (ratio - 1.0) * 100.0);
        report.notes.push_back(buf);
      }
    }
  }
  return report;
}

}  // namespace expdriver
