// Declarative experiment model for the paper's evaluation: each figure or
// ablation is a *suite* — a named matrix of benchmark points (config tokens ×
// sweep values), a uniform repetition/warmup policy, and metric extractors —
// registered once and consumed by the driver (run), the baseline comparator
// (--check) and the docs renderer (--render). The model is backend-agnostic:
// executing a point is delegated to a PointRunner, so tests can drive suites
// with stub runners and the bench harness binds the real ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace expdriver {

/// Results-file schema identifier; bump when the JSON layout changes.
inline constexpr const char* kResultSchema = "amtnet-bench-v1";

/// The three benchmark shapes of the paper's evaluation (§4.1, §4.2, §5),
/// plus the open-loop serving shape (loadgen + admission control), the
/// collective-round shape, and the distributed-FFT workload.
enum class PointKind { kRate, kLatency, kOcto, kOpenLoop, kColl, kFft };

const char* point_kind_name(PointKind kind);

/// Ordered so serialization and point matching are deterministic.
using Labels = std::map<std::string, std::string>;

/// One benchmark invocation: identity labels plus the full parameter
/// superset of the three shapes (unused fields keep their defaults).
struct PointSpec {
  PointKind kind = PointKind::kRate;
  Labels labels;  // stable identity of the point within its suite

  std::string parcelport;           // Table-1 config name (may carry tokens)
  std::string platform = "expanse";
  std::size_t msg_size = 8;
  std::size_t batch = 100;
  std::size_t base_total_msgs = 0;  // rate: scaled by env.scale, min 1
  double attempted_rate = 0.0;      // rate: messages/s, 0 = unlimited
  // Shaped wire for rate points (any field > 0 switches the fabric to
  // wall-clock gating): line rate, per-packet latency, and a NIC
  // message-rate cap — the knob that makes a small-message flood
  // message-rate-bound rather than host-CPU-bound. 0 = zero-time fabric.
  double rate_bandwidth_gbps = 0.0;
  double rate_latency_us = 0.0;
  double rate_pkt_mpps = 0.0;
  std::size_t zchunk_count = 0;
  std::size_t zero_copy_threshold = 8192;
  std::size_t max_connections = 8192;
  unsigned fabric_rails = 0;        // 0 = platform default
  std::uint32_t localities = 2;     // octo / openloop
  int level = 3;                    // octo
  int base_steps = 0;               // latency round trips / octo steps; scaled, min 1
  unsigned window = 1;              // latency chains
  unsigned workers = 0;             // 0 = environment default
  // openloop shape (reuses attempted_rate as the offered requests/s and
  // base_total_msgs as the request count; AMTNET_LOADGEN_SEED overrides
  // ol_seed at run time).
  std::string ol_process = "poisson";  // poisson | burst
  std::string ol_size_mix = "4096";    // "bytes:weight,..." request mix
  std::uint64_t ol_seed = 2026;
  double ol_bandwidth_gbps = 0.13;     // shaped-fabric line rate
  double ol_latency_us = 100.0;        // shaped-fabric one-way latency
  // >0: pin AMTNET_ADMIT_DEADLINE_US for this point (deadline-drop points
  // must not depend on whatever the ambient environment carries).
  unsigned ol_admit_deadline_us = 0;
  // coll shape (reuses msg_size as the payload/per-rank block and
  // base_steps as the back-to-back round count; the algorithm family rides
  // in the parcelport name's coll<ALGO> token).
  std::string coll_op = "allreduce";  // allreduce|broadcast|alltoall|barrier
  // fft shape: transform size = fft_dim * fft_dim points, distributed over
  // `localities`; base_steps transforms per run.
  std::size_t fft_dim = 64;
};

/// How one metric participates in regression gating.
struct MetricSpec {
  std::string name;
  std::string unit;
  bool lower_is_better = false;
  bool gate = true;             // false: recorded but never gated (--check)
  double rel_tolerance = 0.30;  // relative band, scaled by --tolerance-scale
};

/// Pulls one counter aggregate out of the post-run telemetry snapshot:
/// counter_sum(prefix, suffix), recorded as metric `metric` (never gated —
/// counts scale with the sweep size, not with performance).
struct TelemetryProbe {
  std::string metric;
  std::string prefix;
  std::string suffix;
};

/// Uniform run policy, resolved once per invocation (env + CLI).
struct RunEnv {
  double scale = 1.0;    // AMTNET_BENCH_SCALE
  int repetitions = 2;   // AMTNET_BENCH_RUNS (median-of-N)
  int warmup = 1;        // AMTNET_BENCH_WARMUP: discarded leading runs
  unsigned workers = 8;  // AMTNET_BENCH_WORKERS
};

/// Reads AMTNET_BENCH_SCALE / RUNS / WARMUP / WORKERS.
RunEnv run_env_from_environment();

struct MetricResult {
  double median = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::vector<double> samples;  // post-warmup samples, run order
};

struct PointResult {
  Labels labels;  // spec labels + {"kind": point_kind_name(...)}
  std::vector<std::pair<std::string, MetricResult>> metrics;  // run order

  const MetricResult* metric(const std::string& name) const;
};

/// Schema-versioned result of one suite run (what BENCH_<suite>.json holds).
struct SuiteResult {
  std::string schema = kResultSchema;
  std::string suite;
  std::string figure;
  /// Fabric transport backend the run used ("sim" | "shm"). Serialized only
  /// when non-default so committed sim baselines stay byte-identical; the
  /// comparator refuses to gate across different backends.
  std::string backend = "sim";
  /// Locality rank in a multi-process run (-1 = single-process). Serialized
  /// only when >= 0.
  int local_rank = -1;
  RunEnv env;
  std::vector<PointResult> points;
};

/// One sample of one point: metric name -> value, in emission order.
using Sample = std::vector<std::pair<std::string, double>>;

/// Executes one point once and returns its metrics. Runners append any
/// suite-level telemetry-probe metrics themselves (they own the registry
/// snapshot of the run they just performed).
using PointRunner = std::function<Sample(const PointSpec&, const RunEnv&)>;

struct SuiteSpec {
  std::string name;    // e.g. "fig1_msgrate_8b" -> BENCH_fig1_msgrate_8b.json
  std::string binary;  // e.g. "bench_fig1_msgrate_8b"
  std::string figure;  // "Figure 1", "§7.2 ablation", ...
  std::string title;        // one-line description (bench header)
  std::string expectation;  // the paper's qualitative expectation
  bool smoke = false;       // member of the pinned CI regression-gate subset
  std::vector<PointSpec> points;
  std::vector<MetricSpec> metric_overrides;  // by name; else kind defaults
  std::vector<TelemetryProbe> probes;
  /// Optional derived console summary (peak tables, speedup columns),
  /// printed after the run; not part of the recorded result.
  std::function<void(const SuiteResult&)> post_summary;
};

/// Gate policy for `metric` under `spec`: overrides first, then the
/// per-kind defaults (rate_kps / latency_us / steps_per_s), then an
/// ungated catch-all for unknown (telemetry) metrics.
MetricSpec metric_spec_for(const SuiteSpec& spec, const std::string& name);

}  // namespace expdriver
