// Process-wide suite registry. Suites are registered once (idempotently, by
// name) in registration order, which the docs renderer preserves so
// generated tables follow the paper's figure numbering.
#pragma once

#include <string>
#include <vector>

#include "expdriver/experiment.hpp"

namespace expdriver {

class SuiteRegistry {
 public:
  static SuiteRegistry& instance();

  /// Registers (or replaces, matching by name) one suite.
  void add(SuiteSpec spec);

  /// nullptr when unknown.
  const SuiteSpec* find(const std::string& name) const;

  /// All suites in registration order.
  std::vector<const SuiteSpec*> all() const;

  /// The pinned CI regression-gate subset (spec.smoke == true).
  std::vector<const SuiteSpec*> smoke() const;

 private:
  std::vector<SuiteSpec> suites_;
};

}  // namespace expdriver
