#include "expdriver/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace expdriver {

Json Json::boolean(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = value;
  return j;
}

Json Json::string(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

std::string json_number_to_string(double value) {
  char buf[64];
  // Integral values (the common case: counts, sizes) print as integers so
  // the emitted files stay human-diffable; everything else keeps 17
  // significant digits for exact round-tripping.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void dump_value(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: out += json_number_to_string(j.as_number()); break;
    case Json::Type::kString:
      out += '"';
      append_escaped(out, j.as_string());
      out += '"';
      break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : j.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : j.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        append_escaped(out, key);
        out += "\":";
        dump_value(value, out);
      }
      out += '}';
      break;
    }
  }
}

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* word) {
    const char* q = word;
    const char* save = p;
    while (*q != '\0') {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end - p < 5) return false;
            char hex[5] = {p[1], p[2], p[3], p[4], '\0'};
            const long code = std::strtol(hex, nullptr, 16);
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {  // good enough for the control chars we escape
              out += '?';
            }
            p += 4;
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (p >= end) return false;
    if (*p == '{') {
      ++p;
      out = Json::object();
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return false;
        ++p;
        Json value;
        if (!parse_value(value)) return false;
        out.set(std::move(key), std::move(value));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return false;
      }
    }
    if (*p == '[') {
      ++p;
      out = Json::array();
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        Json value;
        if (!parse_value(value)) return false;
        out.push_back(std::move(value));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return false;
      }
    }
    if (*p == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json::string(std::move(s));
      return true;
    }
    if (literal("true")) {
      out = Json::boolean(true);
      return true;
    }
    if (literal("false")) {
      out = Json::boolean(false);
      return true;
    }
    if (literal("null")) {
      out = Json::null();
      return true;
    }
    // number
    char* num_end = nullptr;
    const double value = std::strtod(p, &num_end);
    if (num_end == p || num_end > end) return false;
    p = num_end;
    out = Json::number(value);
    return true;
  }
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<Json> Json::parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Json value;
  if (!parser.parse_value(value)) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;
  return value;
}

}  // namespace expdriver
