#include "expdriver/registry.hpp"

#include <algorithm>
#include <cstdlib>

namespace expdriver {

const char* point_kind_name(PointKind kind) {
  switch (kind) {
    case PointKind::kRate: return "rate";
    case PointKind::kLatency: return "latency";
    case PointKind::kOcto: return "octo";
    case PointKind::kOpenLoop: return "openloop";
    case PointKind::kColl: return "coll";
    case PointKind::kFft: return "fft";
  }
  return "unknown";
}

RunEnv run_env_from_environment() {
  RunEnv env;
  if (const char* s = std::getenv("AMTNET_BENCH_SCALE")) {
    env.scale = std::strtod(s, nullptr);
  }
  if (const char* s = std::getenv("AMTNET_BENCH_RUNS")) {
    env.repetitions = static_cast<int>(std::strtol(s, nullptr, 10));
  }
  if (const char* s = std::getenv("AMTNET_BENCH_WARMUP")) {
    env.warmup = static_cast<int>(std::strtol(s, nullptr, 10));
  }
  if (const char* s = std::getenv("AMTNET_BENCH_WORKERS")) {
    env.workers = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
  }
  if (env.repetitions < 1) env.repetitions = 1;
  if (env.warmup < 0) env.warmup = 0;
  return env;
}

const MetricResult* PointResult::metric(const std::string& name) const {
  for (const auto& [metric_name, result] : metrics) {
    if (metric_name == name) return &result;
  }
  return nullptr;
}

MetricSpec metric_spec_for(const SuiteSpec& spec, const std::string& name) {
  for (const auto& override_spec : spec.metric_overrides) {
    if (override_spec.name == name) return override_spec;
  }
  if (name == "rate_kps") return {"rate_kps", "K msgs/s", false, true, 0.30};
  if (name == "injection_kps") {
    // Achieved injection tracks the attempted rate by construction; only the
    // delivered rate is a performance statement worth gating.
    return {"injection_kps", "K msgs/s", false, false, 0.30};
  }
  if (name == "latency_us") return {"latency_us", "us", true, true, 0.30};
  if (name == "steps_per_s") return {"steps_per_s", "steps/s", false, true, 0.30};
  // Open-loop serving metrics: goodput is the gated performance statement
  // (it is pinned by the shaped fabric, so it is stable across machines);
  // the latency tail is what the suite *maps* — it swings by design across
  // the knee, so it is recorded with units but never gated.
  if (name == "goodput_kps") return {"goodput_kps", "K req/s", false, true, 0.30};
  if (name == "offered_kps") return {"offered_kps", "K req/s", false, false, 0.30};
  if (name == "p50_us") return {"p50_us", "us", true, false, 0.30};
  if (name == "p99_us") return {"p99_us", "us", true, false, 0.30};
  if (name == "p999_us") return {"p999_us", "us", true, false, 0.30};
  if (name == "gen_lag_p99_us") return {"gen_lag_p99_us", "us", true, false, 0.30};
  // Collective round time and distributed-FFT transform time: wall-clock
  // on the shaped wire, lower is better, gated.
  if (name == "coll_us") return {"coll_us", "us", true, true, 0.30};
  if (name == "fft_ms") return {"fft_ms", "ms", true, true, 0.30};
  // Unknown metrics (telemetry probes): record, never gate.
  return {name, "", false, false, 0.30};
}

SuiteRegistry& SuiteRegistry::instance() {
  static SuiteRegistry registry;
  return registry;
}

void SuiteRegistry::add(SuiteSpec spec) {
  for (auto& existing : suites_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  suites_.push_back(std::move(spec));
}

const SuiteSpec* SuiteRegistry::find(const std::string& name) const {
  for (const auto& suite : suites_) {
    if (suite.name == name) return &suite;
  }
  return nullptr;
}

std::vector<const SuiteSpec*> SuiteRegistry::all() const {
  std::vector<const SuiteSpec*> out;
  out.reserve(suites_.size());
  for (const auto& suite : suites_) out.push_back(&suite);
  return out;
}

std::vector<const SuiteSpec*> SuiteRegistry::smoke() const {
  std::vector<const SuiteSpec*> out;
  for (const auto& suite : suites_) {
    if (suite.smoke) out.push_back(&suite);
  }
  return out;
}

}  // namespace expdriver
