#include "parcelport_lci/parcelport_lci.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <string>

#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/logging.hpp"

namespace pplci {

namespace {
minilci::Config make_device_config(const amt::ParcelportContext& context) {
  minilci::Config config;
  // The LCI eager threshold stays at its default; the header message must
  // fit in one medium message, so the header cap below accounts for both.
  (void)context;
  return config;
}

std::string pp_metric(amt::Rank rank, const char* leaf) {
  return "pplci/loc" + std::to_string(rank) + "/" + leaf;
}
}  // namespace

LciParcelport::LciParcelport(const amt::ParcelportContext& context)
    : context_(context),
      protocol_(context.config.protocol),
      progress_type_(context.config.progress),
      completion_type_(context.config.completion),
      max_header_size_(std::min(
          std::max(context.zero_copy_threshold, sizeof(amt::WireHeader)),
          make_device_config(context).eager_threshold)),
      device_(*context.fabric, context.rank, make_device_config(context),
              &remote_put_cq_),
      ctr_delivered_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "messages_delivered"))),
      hist_send_ns_(context.fabric->telemetry().histogram(
          pp_metric(context.rank, "send_ns"))) {
  telemetry::Registry& registry = context.fabric->telemetry();
  remote_put_cq_.attach_depth_gauge(
      &registry.gauge(pp_metric(context.rank, "remote_put_cq_depth")));
  comp_cq_.attach_depth_gauge(
      &registry.gauge(pp_metric(context.rank, "comp_cq_depth")));
}

LciParcelport::~LciParcelport() { stop(); }

void LciParcelport::start() {
  started_.store(true);
  if (protocol_ == amt::ParcelportConfig::Protocol::kSendRecv) {
    // One always-posted header receive per peer, the MPI-parcelport style.
    for (amt::Rank r = 0; r < device_.world_size(); ++r) {
      if (r == context_.rank) continue;
      device_.recvm(r, kHeaderTag, make_comp(), kHeaderRecvCtx);
    }
  }
  if (progress_type_ == amt::ParcelportConfig::ProgressType::kPinned) {
    progress_stop_.store(false);
    progress_thread_ = std::thread([this] { progress_thread_loop(); });
  }
}

void LciParcelport::stop() {
  if (progress_thread_.joinable()) {
    progress_stop_.store(true);
    progress_thread_.join();
  }
  started_.store(false);
}

void LciParcelport::progress_thread_loop() {
  // The HPX resource partitioner pins the progress thread at core 0.
  common::pin_current_thread(0);
  common::set_current_thread_name("lci-progress");
  while (!progress_stop_.load(std::memory_order_relaxed)) {
    if (device_.progress() == 0) std::this_thread::yield();
  }
}

minilci::Comp LciParcelport::make_comp() {
  if (completion_type_ == amt::ParcelportConfig::CompType::kQueue) {
    return minilci::Comp::queue(&comp_cq_);
  }
  auto sync = std::make_unique<minilci::Synchronizer>(1);
  const minilci::Comp comp = minilci::Comp::sync(sync.get());
  std::lock_guard<common::SpinMutex> guard(sync_mutex_);
  pending_syncs_.push_back(std::move(sync));
  return comp;
}

std::uint32_t LciParcelport::alloc_tags(std::size_t count) {
  // Distinct tag per follow-up message (no in-order delivery in LCI). Wraps
  // after 2^32 messages; same reuse assumption as the paper's §3.2.1.
  return static_cast<std::uint32_t>(
      next_tag_.fetch_add(count, std::memory_order_relaxed));
}

void LciParcelport::send(amt::Rank dst, amt::OutMessage msg,
                         common::UniqueFunction<void()> done) {
  AMTNET_TRACE_SCOPE("pplci", "send");
  if (telemetry::timing_enabled()) {
    // Time the full send path: send() entry until the done callback fires
    // from the completion chain. Per-message frequency, so cheap enough.
    const common::Nanos start = common::now_ns();
    done = [this, start, inner = std::move(done)]() mutable {
      hist_send_ns_.record(
          static_cast<std::uint64_t>(common::now_ns() - start));
      inner();
    };
  }
  const amt::HeaderPlan plan = amt::HeaderPlan::decide(msg, max_header_size_);

  auto connection = std::make_unique<SenderConnection>();
  connection->dst = dst;
  connection->done = std::move(done);
  if (!plan.piggy_main) {
    connection->pieces.emplace_back(msg.main_chunk.data(),
                                    msg.main_chunk.size());
  }
  if (msg.has_zchunks() && !plan.piggy_tchunk) {
    connection->tchunk_buf = msg.make_tchunk();
    connection->pieces.emplace_back(connection->tchunk_buf.data(),
                                    connection->tchunk_buf.size());
  }
  for (const amt::ZChunk& chunk : msg.zchunks) {
    connection->pieces.emplace_back(chunk.data, chunk.size);
  }
  connection->tag_base =
      connection->pieces.empty() ? 0 : alloc_tags(connection->pieces.size());

  // Assemble the header directly in an LCI packet buffer (saves a copy on
  // the eager path — paper §3.2.1), then inject it, retrying on transient
  // resource exhaustion per LCI's explicit-retry contract.
  std::optional<minilci::PacketBuffer> packet;
  for (;;) {
    packet = device_.try_alloc_packet();
    if (packet) break;
    if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
      device_.progress();
    }
    std::this_thread::yield();
  }
  const std::size_t header_size = amt::encode_header_to(
      msg, plan, connection->tag_base, packet->data(), packet->capacity());
  packet->set_size(header_size);
  connection->msg = std::move(msg);

  const minilci::Comp comp = make_comp();
  const auto ctx = reinterpret_cast<std::uint64_t>(connection.get());
  for (;;) {
    const common::Status status =
        protocol_ == amt::ParcelportConfig::Protocol::kPutSendRecv
            ? device_.put_dyn_packet(dst, 0, *packet, comp, ctx)
            : device_.sendm_packet(dst, kHeaderTag, *packet, comp, ctx);
    if (status == common::Status::kOk) break;
    if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
      device_.progress();
    }
    std::this_thread::yield();
  }
  // Ownership passes to the completion path (dispatch_entry deletes it).
  connection.release();
}

common::Status LciParcelport::SenderConnection::post_current(
    LciParcelport& port) {
  const auto [data, size] = pieces[next_piece];
  const std::uint32_t tag =
      tag_base + static_cast<std::uint32_t>(next_piece);
  const minilci::Comp comp = port.make_comp();
  const auto ctx = reinterpret_cast<std::uint64_t>(this);
  const common::Status status =
      size <= port.device_.max_medium_size()
          ? port.device_.sendm(dst, tag, data, size, comp, ctx)
          : port.device_.sendl(dst, tag, data, size, comp, ctx);
  if (status == common::Status::kOk) ++next_piece;
  return status;
}

bool LciParcelport::SenderConnection::on_completion(
    LciParcelport& port, minilci::CqEntry&& /*entry*/) {
  // The previous operation (header or piece next_piece-1) completed; post
  // the next piece, or finish when everything has completed.
  if (next_piece < pieces.size()) {
    if (post_current(port) == common::Status::kRetry) {
      std::lock_guard<common::SpinMutex> guard(port.retry_mutex_);
      port.retry_.push_back(this);
    }
    return false;
  }
  done();
  return true;
}

bool LciParcelport::retry_senders() {
  bool did_work = false;
  for (int i = 0; i < 8; ++i) {
    SenderConnection* connection = nullptr;
    {
      std::lock_guard<common::SpinMutex> guard(retry_mutex_);
      if (retry_.empty()) break;
      connection = retry_.front();
      retry_.pop_front();
    }
    if (connection->post_current(*this) == common::Status::kRetry) {
      std::lock_guard<common::SpinMutex> guard(retry_mutex_);
      retry_.push_front(connection);
      break;
    }
    did_work = true;
  }
  return did_work;
}

void LciParcelport::ReceiverConnection::post_next(LciParcelport& port) {
  const auto post_piece = [&](std::size_t size, std::vector<std::byte>& buf,
                              bool is_zchunk) {
    const std::uint32_t tag =
        tag_base + static_cast<std::uint32_t>(piece_index);
    ++piece_index;
    const minilci::Comp comp = port.make_comp();
    const auto ctx = reinterpret_cast<std::uint64_t>(this);
    if (size <= port.device_.max_medium_size()) {
      // Medium: the payload arrives as an owned buffer in the entry and is
      // moved into place by store_completed.
      port.device_.recvm(src, tag, comp, ctx);
    } else {
      buf.resize(size);
      port.device_.recvl(src, tag, buf.data(), size, comp, ctx);
    }
    (void)is_zchunk;
  };

  for (;;) {
    switch (stage) {
      case Stage::kMain:
        stage = Stage::kTchunk;
        if (!fields.piggy_main && fields.main_size > 0) {
          post_piece(fields.main_size, main, false);
          return;
        }
        break;
      case Stage::kTchunk:
        stage = Stage::kZchunks;
        if (fields.num_zchunks > 0 && !fields.piggy_tchunk) {
          post_piece(fields.num_zchunks * sizeof(std::uint64_t), tchunk,
                     false);
          return;
        }
        break;
      case Stage::kZchunks:
        if (zsizes.empty() && fields.num_zchunks > 0) {
          zsizes = amt::parse_tchunk(tchunk.data(), tchunk.size());
          assert(zsizes.size() == fields.num_zchunks);
        }
        if (zindex < fields.num_zchunks) {
          zchunks.emplace_back();
          post_piece(zsizes[zindex], zchunks.back(), true);
          ++zindex;
          return;
        }
        stage = Stage::kDone;
        return;
      case Stage::kDone:
        return;
    }
  }
}

void LciParcelport::ReceiverConnection::store_completed(
    minilci::CqEntry&& entry) {
  if (entry.op != minilci::OpKind::kRecvMedium) return;  // long: in place
  // The entry completed the most recently posted piece; figure out which
  // buffer it belongs to from the walk state.
  if (stage == Stage::kTchunk) {
    main = std::move(entry.data);
  } else if (stage == Stage::kZchunks && zindex == 0) {
    tchunk = std::move(entry.data);
  } else {
    assert(zindex > 0);
    zchunks[zindex - 1] = std::move(entry.data);
  }
}

bool LciParcelport::ReceiverConnection::on_completion(
    LciParcelport& port, minilci::CqEntry&& entry) {
  store_completed(std::move(entry));
  post_next(port);
  if (stage == Stage::kDone) {
    finish(port);
    return true;
  }
  return false;
}

void LciParcelport::ReceiverConnection::finish(LciParcelport& port) {
  amt::InMessage in;
  in.source = src;
  in.main_chunk = std::move(main);
  in.zchunks = std::move(zchunks);
  port.ctr_delivered_.add();
  port.context_.deliver(std::move(in));
}

void LciParcelport::handle_header(amt::Rank src, const std::byte* data,
                                  std::size_t size) {
  amt::DecodedHeader decoded = amt::decode_header(data, size);

  auto connection = std::make_unique<ReceiverConnection>();
  connection->src = src;
  connection->tag_base = decoded.fields.tag;
  connection->fields = decoded.fields;
  connection->main = std::move(decoded.piggy_main);
  connection->tchunk = std::move(decoded.piggy_tchunk);

  connection->post_next(*this);
  if (connection->stage == ReceiverConnection::Stage::kDone) {
    connection->finish(*this);  // fully piggybacked message
    return;
  }
  connection.release();  // owned by its completion chain now
}

void LciParcelport::dispatch_entry(minilci::CqEntry&& entry) {
  if (entry.user_context == kHeaderRecvCtx) {
    // sr protocol: a header message arrived on the always-posted receive.
    const amt::Rank src = entry.rank;
    handle_header(src, entry.data.data(), entry.data.size());
    device_.recvm(src, kHeaderTag, make_comp(), kHeaderRecvCtx);  // repost
    return;
  }
  auto* connection = reinterpret_cast<Connection*>(entry.user_context);
  assert(connection != nullptr);
  if (connection->on_completion(*this, std::move(entry))) {
    delete connection;
  }
}

bool LciParcelport::poll_completions() {
  return comp_cq_.poll_batch(16, [this](minilci::CqEntry&& entry) {
           dispatch_entry(std::move(entry));
         }) > 0;
}

bool LciParcelport::poll_remote_puts() {
  return remote_put_cq_.poll_batch(16, [this](minilci::CqEntry&& entry) {
           assert(entry.op == minilci::OpKind::kRemotePut);
           handle_header(entry.rank, entry.data.data(), entry.data.size());
         }) > 0;
}

bool LciParcelport::poll_synchronizers() {
  // Round-robin over the pending-synchronizer list, the sy-variant analogue
  // of the MPI parcelport's pending-connection polling.
  bool did_work = false;
  for (int i = 0; i < 8; ++i) {
    std::unique_ptr<minilci::Synchronizer> sync;
    {
      std::lock_guard<common::SpinMutex> guard(sync_mutex_);
      if (pending_syncs_.empty()) break;
      sync = std::move(pending_syncs_.front());
      pending_syncs_.pop_front();
    }
    std::vector<minilci::CqEntry> entries;
    if (sync->test(&entries)) {
      for (auto& entry : entries) dispatch_entry(std::move(entry));
      did_work = true;  // synchronizer consumed and destroyed
    } else {
      std::lock_guard<common::SpinMutex> guard(sync_mutex_);
      pending_syncs_.push_back(std::move(sync));
    }
  }
  return did_work;
}

bool LciParcelport::background_work(unsigned /*worker_index*/) {
  if (!started_.load(std::memory_order_relaxed)) return false;
  bool did_work = false;
  if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
    did_work |= device_.progress() > 0;
  }
  if (protocol_ == amt::ParcelportConfig::Protocol::kPutSendRecv) {
    did_work |= poll_remote_puts();
  }
  if (completion_type_ == amt::ParcelportConfig::CompType::kQueue) {
    did_work |= poll_completions();
  } else {
    did_work |= poll_synchronizers();
  }
  did_work |= retry_senders();
  return did_work;
}

}  // namespace pplci
