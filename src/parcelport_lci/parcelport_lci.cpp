#include "parcelport_lci/parcelport_lci.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/integrity.hpp"
#include "common/logging.hpp"

namespace pplci {

namespace {
minilci::Config make_device_config(const amt::ParcelportContext& context) {
  minilci::Config config;
  // The LCI eager threshold stays at its default; the header message must
  // fit in one medium message, so the header cap below accounts for both.
  (void)context;
  if (const char* s = std::getenv("AMTNET_LCI_PACKET_CACHE")) {
    config.packet_cache_size =
        static_cast<std::size_t>(std::strtoul(s, nullptr, 10));
  }
  // Send-side packet pool size (primarily a test knob: a pool of 1 forces
  // fast-path pool exhaustion to pin the fallback/credit-conservation
  // behaviour).
  if (const char* s = std::getenv("AMTNET_LCI_PACKET_POOL")) {
    const std::size_t pool =
        static_cast<std::size_t>(std::strtoul(s, nullptr, 10));
    if (pool > 0) config.packet_pool_size = pool;
  }
  // Rendezvous-state shard count: the config token ("rs<N>") wins, the
  // environment fills in, the minilci default otherwise. rs1 collapses the
  // sharded tables to one table + lock (the ablation baseline).
  if (context.config.lci_rdv_shards > 0) {
    config.rdv_shards = context.config.lci_rdv_shards;
  } else if (const char* s = std::getenv("AMTNET_LCI_RDV_SHARDS")) {
    const std::size_t shards =
        static_cast<std::size_t>(std::strtoul(s, nullptr, 10));
    if (shards > 0) config.rdv_shards = shards;
  }
  return config;
}

int resolve_progress_threads(const amt::ParcelportConfig& config) {
  if (config.lci_progress_threads > 0) {
    return static_cast<int>(config.lci_progress_threads);
  }
  if (const char* s = std::getenv("AMTNET_LCI_PROGRESS_THREADS")) {
    return static_cast<int>(std::strtoul(s, nullptr, 10));
  }
  return 0;  // unbounded
}

std::size_t resolve_pipeline_depth(const amt::ParcelportConfig& config) {
  // The config name ("pd<N>" token) wins; the environment only fills in
  // when the name leaves the depth unbounded.
  if (config.lci_pipeline_depth > 0) return config.lci_pipeline_depth;
  if (const char* s = std::getenv("AMTNET_LCI_PIPELINE_DEPTH")) {
    return static_cast<std::size_t>(std::strtoul(s, nullptr, 10));
  }
  return 0;
}

std::size_t resolve_fastpath_cap(const amt::ParcelportConfig& config,
                                 std::size_t eager_threshold) {
  // The config name ("fp"/"fp<N>"/"fpoff" token) wins; the environment fills
  // in otherwise; the default is ON at the eager threshold. The cap bounds
  // the *whole frame* (header + every payload byte) and can never exceed
  // one medium message.
  long value = config.lci_fastpath;
  if (value < 0) {
    value = 1;
    if (const char* s = std::getenv("AMTNET_LCI_FASTPATH")) {
      const std::string text(s);
      if (text == "0" || text == "off" || text == "false") {
        value = 0;
      } else if (text == "1" || text == "on" || text == "true") {
        value = 1;
      } else {
        value = std::strtol(text.c_str(), nullptr, 10);
        if (value < 0) value = 1;
      }
    }
  }
  if (value == 0) return 0;
  if (value == 1) return eager_threshold;
  if (static_cast<std::size_t>(value) > eager_threshold) {
    // The clamp is silent per message, so surface it once per process: an
    // fp<N> beyond the eager threshold cannot take effect (a frame must fit
    // one medium message).
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      AMTNET_LOG_WARN("pplci: fast-path cap fp", value,
                      " exceeds the eager threshold ", eager_threshold,
                      " — clamping to ", eager_threshold, " bytes");
    }
  }
  return std::min(static_cast<std::size_t>(value), eager_threshold);
}

std::size_t resolve_agg_cap(const amt::ParcelportConfig& config,
                            std::size_t eager_threshold) {
  // The config name ("agg<N>"/"aggoff" token) wins; the environment fills in
  // otherwise; the default is OFF (aggregation is opt-in — it changes frame
  // timing, so the historical configurations stay bit-identical). The cap
  // bounds the whole batch frame and can never exceed one medium message.
  long value = config.lci_agg;
  if (value < 0) {
    value = 0;
    if (const char* s = std::getenv("AMTNET_LCI_AGG")) {
      const std::string text(s);
      if (text == "0" || text == "off" || text == "false") {
        value = 0;
      } else {
        value = std::strtol(text.c_str(), nullptr, 10);
        if (value < 0) value = 0;
      }
    }
  }
  if (value == 0) return 0;
  if (static_cast<std::size_t>(value) < amt::kMinAggFrameBytes) {
    // Config-name tokens are rejected at parse; this catches the env path.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      AMTNET_LOG_WARN("pplci: AMTNET_LCI_AGG=", value,
                      " is below the minimum one-parcel batch frame (",
                      amt::kMinAggFrameBytes, " bytes) — raising to ",
                      amt::kMinAggFrameBytes);
    }
    value = static_cast<long>(amt::kMinAggFrameBytes);
  }
  return std::min(static_cast<std::size_t>(value), eager_threshold);
}

common::Nanos resolve_agg_age_ns(const amt::ParcelportConfig& config) {
  // "aggt<USEC>" token wins, AMTNET_LCI_AGG_AGE_US fills in, default 200 µs.
  // 0 disables the age trigger (size/idle/final flushes still apply).
  long value = config.lci_agg_age_us;
  if (value < 0) {
    if (const char* s = std::getenv("AMTNET_LCI_AGG_AGE_US")) {
      value = std::strtol(s, nullptr, 10);
    }
  }
  if (value < 0) value = 200;
  return static_cast<common::Nanos>(value) * 1000;
}

std::string pp_metric(amt::Rank rank, const char* leaf) {
  return "pplci/loc" + std::to_string(rank) + "/" + leaf;
}
}  // namespace

LciParcelport::LciParcelport(const amt::ParcelportContext& context)
    : context_(context),
      protocol_(context.config.protocol),
      progress_type_(context.config.progress),
      completion_type_(context.config.completion),
      max_header_size_(std::min(
          std::max(context.zero_copy_threshold, sizeof(amt::WireHeader)),
          make_device_config(context).eager_threshold)),
      pipeline_depth_(resolve_pipeline_depth(context.config)),
      progress_threads_(resolve_progress_threads(context.config)),
      fastpath_cap_(resolve_fastpath_cap(
          context.config, make_device_config(context).eager_threshold)),
      agg_cap_(resolve_agg_cap(context.config,
                               make_device_config(context).eager_threshold)),
      device_(*context.fabric, context.rank, make_device_config(context),
              &remote_put_cq_),
      progress_tickets_(progress_threads_),
      progress_backoff_(context.num_workers + 1),
      header_seq_tx_(context.fabric->num_ranks()),
      header_seq_rx_(context.fabric->num_ranks()),
      ctr_delivered_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "messages_delivered"))),
      ctr_progress_skips_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "progress_skips"))),
      ctr_send_retries_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "send_retries"))),
      ctr_conn_reuses_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "conn_reuses"))),
      ctr_conn_allocs_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "conn_allocs"))),
      ctr_sync_reuses_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "sync_reuses"))),
      ctr_sync_allocs_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "sync_allocs"))),
      ctr_fastpath_hits_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "fastpath_hits"))),
      ctr_fastpath_fallbacks_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "fastpath_fallbacks"))),
      ctr_agg_batched_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "agg_batched"))),
      ctr_agg_flushes_size_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "agg_flushes_size"))),
      ctr_agg_flushes_stall_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "agg_flushes_stall"))),
      ctr_agg_flushes_age_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "agg_flushes_age"))),
      ctr_agg_flushes_idle_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "agg_flushes_idle"))),
      gauge_agg_mean_batch_x100_(context.fabric->telemetry().gauge(
          pp_metric(context.rank, "agg_mean_batch_x100"))),
      gauge_pieces_in_flight_(context.fabric->telemetry().gauge(
          pp_metric(context.rank, "pieces_in_flight"))),
      gauge_send_queue_depth_(context.fabric->telemetry().gauge(
          pp_metric(context.rank, "send_queue_depth"))),
      hist_send_ns_(context.fabric->telemetry().histogram(
          pp_metric(context.rank, "send_ns"))) {
  telemetry::Registry& registry = context.fabric->telemetry();
  remote_put_cq_.attach_depth_gauge(
      &registry.gauge(pp_metric(context.rank, "remote_put_cq_depth")));
  comp_cq_.attach_depth_gauge(
      &registry.gauge(pp_metric(context.rank, "comp_cq_depth")));
  if (fastpath_cap_ > 0 || agg_cap_ > 0) {
    // Whole-parcel and batch frames arrive on the reserved tag and dispatch
    // straight from progress context — armed before any progress thread
    // exists. The two frame kinds are told apart by their leading magic.
    device_.register_tag_handler(
        minilci::kFastpathTag,
        minilci::Comp::handler(&LciParcelport::fastpath_handler, this));
  }
  if (agg_cap_ > 0) {
    aggregator_ = std::make_unique<amt::Aggregator>(
        context.fabric->num_ranks(), agg_cap_,
        resolve_agg_age_ns(context.config),
        [this](amt::Rank dst, std::vector<amt::Aggregator::Entry>&& batch,
               amt::Aggregator::FlushReason reason) {
          flush_batch(dst, std::move(batch), reason);
        });
  }
}

LciParcelport::~LciParcelport() {
  stop();
  while (auto connection = sender_pool_.try_pop()) delete *connection;
  while (auto connection = receiver_pool_.try_pop()) delete *connection;
  while (auto sync = sync_pool_.try_pop()) delete *sync;
  for (auto& shard : sync_shards_) {
    for (minilci::Synchronizer* sync : shard.value.pending) delete sync;
  }
}

void LciParcelport::start() {
  started_.store(true);
  if (protocol_ == amt::ParcelportConfig::Protocol::kSendRecv) {
    // One always-posted header receive per peer, the MPI-parcelport style.
    for (amt::Rank r = 0; r < device_.world_size(); ++r) {
      if (r == context_.rank) continue;
      device_.recvm(r, kHeaderTag, make_comp(), kHeaderRecvCtx);
    }
  }
  if (progress_type_ == amt::ParcelportConfig::ProgressType::kPinned) {
    progress_stop_.store(false);
    progress_thread_ = std::thread([this] { progress_thread_loop(); });
  }
}

void LciParcelport::stop() {
  // Drain partially filled batches while a progress path still exists so
  // their done callbacks (and any buffers they hold) release before
  // teardown.
  if (aggregator_) aggregator_->flush_all();
  if (progress_thread_.joinable()) {
    progress_stop_.store(true);
    progress_thread_.join();
  }
  started_.store(false);
}

void LciParcelport::progress_thread_loop() {
  // The HPX resource partitioner pins the progress thread at core 0.
  common::pin_current_thread(0);
  common::set_current_thread_name("lci-progress");
  while (!progress_stop_.load(std::memory_order_relaxed)) {
    if (device_.progress() == 0) std::this_thread::yield();
  }
}

minilci::Comp LciParcelport::make_comp() {
  if (completion_type_ == amt::ParcelportConfig::CompType::kQueue) {
    return minilci::Comp::queue(&comp_cq_);
  }
  minilci::Synchronizer* sync = nullptr;
  if (auto pooled = sync_pool_.try_pop()) {
    sync = *pooled;
    ctr_sync_reuses_.add();
  } else {
    sync = new minilci::Synchronizer(1);
    ctr_sync_allocs_.add();
  }
  const minilci::Comp comp = minilci::Comp::sync(sync);
  SyncShard& shard =
      sync_shards_[telemetry::shard_slot() & (kSyncShards - 1)].value;
  std::lock_guard<common::SpinMutex> guard(shard.mutex);
  shard.pending.push_back(sync);
  return comp;
}

LciParcelport::SenderConnection* LciParcelport::acquire_sender() {
  if (auto connection = sender_pool_.try_pop()) {
    ctr_conn_reuses_.add();
    return *connection;
  }
  ctr_conn_allocs_.add();
  return new SenderConnection();
}

LciParcelport::ReceiverConnection* LciParcelport::acquire_receiver() {
  if (auto connection = receiver_pool_.try_pop()) {
    ctr_conn_reuses_.add();
    return *connection;
  }
  ctr_conn_allocs_.add();
  return new ReceiverConnection();
}

void LciParcelport::recycle(SenderConnection* connection) {
  connection->reset();
  if (!sender_pool_.try_push(connection)) delete connection;
}

void LciParcelport::recycle(ReceiverConnection* connection) {
  connection->reset();
  if (!receiver_pool_.try_push(connection)) delete connection;
}

std::uint32_t LciParcelport::alloc_tags(std::size_t count) {
  // Distinct tag per follow-up message (no in-order delivery in LCI). The
  // 32-bit tag space wraps mid-run on long workloads; a range must never
  // start at — or wrap through — the reserved header tag 0, or follow-up
  // traffic would collide with sr-protocol headers; nor may it reach the
  // reserved fast-path tag 0xFFFFFFFF (the last value before the wrap), or
  // a follow-up piece would fire the whole-parcel handler. Receivers route
  // pieces with u32 subtraction (entry.tag - tag_base), which stays correct
  // across the wrap as long as the range itself is contiguous mod 2^32,
  // which the restart below guarantees.
  assert(count > 0 && count < (1u << 16));
  static_assert(minilci::kFastpathTag == 0xFFFFFFFFu,
                "the >= wrap check below reserves exactly the last tag");
  std::uint64_t cur = next_tag_.load(std::memory_order_relaxed);
  for (;;) {
    std::uint32_t base = static_cast<std::uint32_t>(cur);
    if (base == kHeaderTag ||
        static_cast<std::uint64_t>(base) + count >= (1ull << 32)) {
      base = 1;  // skip the reserved tag / the wrap point
    }
    const std::uint64_t next = static_cast<std::uint64_t>(base) + count;
    if (next_tag_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      return base;
    }
  }
}

void LciParcelport::send_backoff(unsigned& round) {
  // Bounded exponential backoff: spin-wait 2^round pauses (capped), then
  // start yielding to the OS. Keeps retry storms off the NIC and the free
  // list while staying responsive when the resource frees up quickly.
  constexpr unsigned kCapShift = 10;
  ctr_send_retries_.add();
  const unsigned shift = std::min(round, kCapShift);
  for (unsigned i = 0; i < (1u << shift); ++i) {
    common::SpinMutex::cpu_relax();
  }
  if (shift == kCapShift) std::this_thread::yield();
  ++round;
}

void LciParcelport::send(amt::Rank dst, amt::OutMessage msg,
                         common::UniqueFunction<void()> done) {
  AMTNET_TRACE_SCOPE("pplci", "send");
  gauge_send_queue_depth_.add();  // balanced in drop_ref, at done()
  if (telemetry::timing_enabled()) {
    // Time the full send path: send() entry until the done callback fires
    // from the completion chain. Per-message frequency, so cheap enough.
    const common::Nanos start = common::now_ns();
    done = [this, start, inner = std::move(done)]() mutable {
      hist_send_ns_.record(
          static_cast<std::uint64_t>(common::now_ns() - start));
      inner();
    };
  }
  // Adaptive aggregation: a batchable parcel bound for a backpressured
  // destination joins the per-destination coalescing buffer instead of
  // injecting its own frame; the aggregator's flush callback (flush_batch)
  // fires `done` later. An idle destination falls through to the
  // single-parcel fast path unbuffered — the load-aware switch.
  if (aggregator_) {
    const std::size_t one_entry_frame = sizeof(amt::BatchHeader) +
                                        sizeof(std::uint32_t) +
                                        amt::batch_entry_size(msg);
    if (one_entry_frame <= agg_cap_) {
      const std::int64_t depth =
          context_.queue_depth ? context_.queue_depth(dst) : 0;
      if (aggregator_->enqueue(dst, depth, msg, done)) return;
    }
  }

  // Small-parcel fast path (put-with-completion): the whole message travels
  // as one self-contained frame on the reserved tag and is dispatched by
  // the destination's handler completion — no connection, no follow-up
  // tags, no completion-queue round trip. Local completion of *_packet is
  // synchronous on kOk, so `done` can fire inline with Comp::none().
  if (fastpath_cap_ > 0) {
    if (const std::size_t frame_size = amt::whole_parcel_frame_size(msg);
        frame_size <= fastpath_cap_) {
      // Bounded packet-pool wait: sustained exhaustion (every in-flight
      // frame holding a packet) must NOT spin forever — the connection path
      // below has its own buffers and its completion chain frees packets.
      // The hand-off keeps `done` intact, so admission credits are
      // conserved, and is counted exactly once (below) like any other
      // fallback.
      std::optional<minilci::PacketBuffer> packet;
      unsigned backoff_round = 0;
      constexpr unsigned kFastpathAllocRounds = 8;
      for (unsigned attempt = 0; attempt < kFastpathAllocRounds; ++attempt) {
        packet = device_.try_alloc_packet();
        if (packet) break;
        if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
          try_progress();
        }
        send_backoff(backoff_round);
      }
      if (packet) {
        const std::uint32_t seq =
            header_seq_tx_[dst].value.fetch_add(1, std::memory_order_relaxed);
        packet->set_size(amt::encode_whole_parcel_to(
            msg, seq, packet->data(), packet->capacity()));
        backoff_round = 0;
        for (;;) {
          const common::Status status =
              protocol_ == amt::ParcelportConfig::Protocol::kPutSendRecv
                  ? device_.put_dyn_packet(dst, minilci::kFastpathTag,
                                           *packet, minilci::Comp::none())
                  : device_.sendm_packet(dst, minilci::kFastpathTag, *packet,
                                         minilci::Comp::none());
          if (status == common::Status::kOk) break;
          if (progress_type_ ==
              amt::ParcelportConfig::ProgressType::kWorker) {
            try_progress();
          }
          send_backoff(backoff_round);
        }
        ctr_fastpath_hits_.add();
        gauge_send_queue_depth_.sub();
        done();
        return;
      }
    }
    // Exactly one fallback count per parcel that leaves the fast path —
    // whether the frame was over the cap or the packet pool stayed
    // exhausted.
    ctr_fastpath_fallbacks_.add();
  }

  const amt::HeaderPlan plan = amt::HeaderPlan::decide(msg, max_header_size_);

  SenderConnection* connection = acquire_sender();
  connection->dst = dst;
  connection->done = std::move(done);
  // Follow-up piece layout, mirrored by the receiver: [main][tchunk][z...].
  // An empty main chunk travels piggybacked-by-omission (never as a piece).
  if (!plan.piggy_main && !msg.main_chunk.empty()) {
    connection->pieces.emplace_back(msg.main_chunk.data(),
                                    msg.main_chunk.size());
  }
  if (msg.has_zchunks() && !plan.piggy_tchunk) {
    msg.make_tchunk_into(connection->tchunk_buf);
    connection->pieces.emplace_back(connection->tchunk_buf.data(),
                                    connection->tchunk_buf.size());
  }
  for (const amt::ZChunk& chunk : msg.zchunks) {
    connection->pieces.emplace_back(chunk.data, chunk.size);
  }
  connection->tag_base =
      connection->pieces.empty() ? 0 : alloc_tags(connection->pieces.size());
  // One reference per operation (header + pieces) plus the guard this
  // function holds while it still touches the connection.
  connection->remaining.store(2 + connection->pieces.size(),
                              std::memory_order_relaxed);

  // Assemble the header directly in an LCI packet buffer (saves a copy on
  // the eager path — paper §3.2.1), then inject it, retrying with bounded
  // backoff on transient resource exhaustion per LCI's explicit-retry
  // contract.
  std::optional<minilci::PacketBuffer> packet;
  unsigned backoff_round = 0;
  for (;;) {
    packet = device_.try_alloc_packet();
    if (packet) break;
    if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
      try_progress();
    }
    send_backoff(backoff_round);
  }
  const std::uint32_t header_seq =
      header_seq_tx_[dst].value.fetch_add(1, std::memory_order_relaxed);
  const std::size_t header_size =
      amt::encode_header_to(msg, plan, connection->tag_base, header_seq,
                            packet->data(), packet->capacity());
  packet->set_size(header_size);
  connection->msg = std::move(msg);

  const minilci::Comp comp = make_comp();
  const auto ctx =
      reinterpret_cast<std::uint64_t>(static_cast<Connection*>(connection));
  backoff_round = 0;
  for (;;) {
    const common::Status status =
        protocol_ == amt::ParcelportConfig::Protocol::kPutSendRecv
            ? device_.put_dyn_packet(dst, 0, *packet, comp, ctx)
            : device_.sendm_packet(dst, kHeaderTag, *packet, comp, ctx);
    if (status == common::Status::kOk) break;
    if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
      try_progress();
    }
    send_backoff(backoff_round);
  }

  // Seed the pipeline: with depth d, the header plus d-1 pieces may be in
  // flight at once (each completion then posts one replacement, so depth 1
  // reproduces the old serialized walk). Unbounded: post everything now.
  const std::size_t seed =
      pipeline_depth_ == 0
          ? connection->pieces.size()
          : std::min(pipeline_depth_ - 1, connection->pieces.size());
  for (std::size_t i = 0; i < seed; ++i) {
    if (!connection->post_one(*this)) break;
  }
  // Drop the send() guard; from here the completion chain owns the
  // connection (and may already be recycling it on another thread).
  connection->drop_ref(*this);
}

common::Status LciParcelport::SenderConnection::post_piece(
    LciParcelport& port, std::size_t index) {
  const auto [data, size] = pieces[index];
  const std::uint32_t tag = tag_base + static_cast<std::uint32_t>(index);
  const minilci::Comp comp = port.make_comp();
  const auto ctx =
      reinterpret_cast<std::uint64_t>(static_cast<Connection*>(this));
  const common::Status status =
      size <= port.device_.max_medium_size()
          ? port.device_.sendm(dst, tag, data, size, comp, ctx)
          : port.device_.sendl(dst, tag, data, size, comp, ctx);
  if (status == common::Status::kOk) port.gauge_pieces_in_flight_.add();
  return status;
}

bool LciParcelport::SenderConnection::post_one(LciParcelport& port) {
  std::size_t index = next_piece.load(std::memory_order_relaxed);
  for (;;) {
    if (index >= pieces.size()) return false;
    if (next_piece.compare_exchange_weak(index, index + 1,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
  if (post_piece(port, index) == common::Status::kRetry) {
    std::lock_guard<common::SpinMutex> guard(port.retry_mutex_);
    port.retry_.push_back(RetryEntry{this, index, 0});
  }
  return true;
}

void LciParcelport::SenderConnection::on_completion(
    LciParcelport& port, minilci::CqEntry&& entry) {
  // Header completions: the dynamic put (psr) or the tag-0 medium send
  // (sr). Everything else is a follow-up piece (piece tags start at 1).
  const bool is_piece = entry.op != minilci::OpKind::kPutDyn &&
                        entry.tag != LciParcelport::kHeaderTag;
  if (is_piece) port.gauge_pieces_in_flight_.sub();
  // Keep the pipeline at its depth: every completion posts one replacement
  // piece (a no-op once all pieces are claimed).
  post_one(port);
  drop_ref(port);
}

void LciParcelport::SenderConnection::drop_ref(LciParcelport& port) {
  if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    port.gauge_send_queue_depth_.sub();
    done();
    port.recycle(this);
  }
}

void LciParcelport::SenderConnection::reset() {
  dst = 0;
  msg = amt::OutMessage{};  // releases the archive buffer + keepalives
  done = common::UniqueFunction<void()>();
  tchunk_buf.clear();  // capacity survives for the next use
  pieces.clear();
  tag_base = 0;
  next_piece.store(0, std::memory_order_relaxed);
  remaining.store(0, std::memory_order_relaxed);
}

bool LciParcelport::retry_senders() {
  bool did_work = false;
  for (int i = 0; i < 8; ++i) {
    RetryEntry entry;
    {
      std::lock_guard<common::SpinMutex> guard(retry_mutex_);
      if (retry_.empty()) break;
      entry = retry_.front();
      retry_.pop_front();
    }
    // The claimed piece's completion has not fired, so the connection is
    // guaranteed alive here.
    if (entry.connection->post_piece(*this, entry.piece) ==
        common::Status::kRetry) {
      // Count every retry round under pplci/*/send_retries, same as the
      // send()-path backoff, and escalate only this piece's own round.
      ++entry.round;
      ctr_send_retries_.add();
      std::lock_guard<common::SpinMutex> guard(retry_mutex_);
      retry_.push_front(entry);
      break;
    }
    did_work = true;
  }
  return did_work;
}

void LciParcelport::post_recv_piece(ReceiverConnection* connection,
                                    std::size_t piece, std::size_t size,
                                    std::vector<std::byte>& buf) {
  const std::uint32_t tag =
      connection->tag_base + static_cast<std::uint32_t>(piece);
  const minilci::Comp comp = make_comp();
  const auto ctx =
      reinterpret_cast<std::uint64_t>(static_cast<Connection*>(connection));
  if (size <= device_.max_medium_size()) {
    // Medium: the payload arrives as an owned buffer in the entry and is
    // moved into place by the completion handler.
    device_.recvm(connection->src, tag, comp, ctx);
  } else {
    buf.resize(size);
    device_.recvl(connection->src, tag, buf.data(), size, comp, ctx);
  }
}

void LciParcelport::ReceiverConnection::post_zchunk_recvs(
    LciParcelport& port) {
  const std::vector<std::uint64_t> zsizes =
      amt::parse_tchunk(tchunk.data(), tchunk.size());
  assert(zsizes.size() == fields.num_zchunks);
  // Size the slot vector before posting anything: completions may land (on
  // other threads) while later receives are still being posted, and the
  // slots must not move under them.
  zchunks.resize(fields.num_zchunks);
  for (std::size_t i = 0; i < zsizes.size(); ++i) {
    port.post_recv_piece(this, zbase + i, zsizes[i], zchunks[i]);
  }
}

void LciParcelport::ReceiverConnection::on_completion(
    LciParcelport& port, minilci::CqEntry&& entry) {
  const std::size_t piece = entry.tag - tag_base;
  const bool is_medium = entry.op == minilci::OpKind::kRecvMedium;
  if (static_cast<int>(piece) == tchunk_piece) {
    if (is_medium) tchunk = std::move(entry.data);
    // Zero-copy chunk sizes are now known; pre-post every zchunk receive.
    // Our own un-dropped reference keeps the connection alive throughout.
    post_zchunk_recvs(port);
  } else if (static_cast<int>(piece) == main_piece) {
    if (is_medium) main = std::move(entry.data);
  } else {
    assert(piece >= zbase && piece - zbase < zchunks.size());
    if (is_medium) zchunks[piece - zbase] = std::move(entry.data);
    // Long receives already landed in the pre-sized slot buffer.
  }
  drop_ref(port);
}

void LciParcelport::ReceiverConnection::drop_ref(LciParcelport& port) {
  if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finish(port);
  }
}

void LciParcelport::ReceiverConnection::finish(LciParcelport& port) {
  amt::InMessage in;
  in.source = src;
  in.main_chunk = std::move(main);
  in.zchunks = std::move(zchunks);
  port.ctr_delivered_.add();
  port.context_.deliver(std::move(in));
  port.recycle(this);
}

void LciParcelport::ReceiverConnection::reset() {
  src = 0;
  tag_base = 0;
  fields = amt::WireHeader{};
  main.clear();
  tchunk.clear();
  zchunks.clear();
  main_piece = -1;
  tchunk_piece = -1;
  zbase = 0;
  remaining.store(0, std::memory_order_relaxed);
}

void LciParcelport::handle_header(amt::Rank src, const std::byte* data,
                                  std::size_t size) {
  amt::DecodedHeader decoded = amt::decode_header(data, size);
  {
    // A duplicated header would double-deliver a parcel: fail fast.
    HeaderSeqRx& rx = header_seq_rx_[src].value;
    std::lock_guard<common::SpinMutex> guard(rx.mutex);
    if (!rx.tracker.accept(decoded.fields.seq)) {
      common::integrity_fail("pplci: duplicated wire header rank=",
                             context_.rank, " src=", src,
                             " seq=", decoded.fields.seq,
                             " tag=", decoded.fields.tag,
                             " — a duplicate would double-deliver a parcel");
    }
  }

  ReceiverConnection* connection = acquire_receiver();
  connection->src = src;
  connection->tag_base = decoded.fields.tag;
  connection->fields = decoded.fields;
  connection->main = std::move(decoded.piggy_main);
  connection->tchunk = std::move(decoded.piggy_tchunk);

  const amt::WireHeader& fields = connection->fields;
  const bool has_main = !fields.piggy_main && fields.main_size > 0;
  const bool has_tchunk = fields.num_zchunks > 0 && !fields.piggy_tchunk;
  std::size_t index = 0;
  if (has_main) connection->main_piece = static_cast<int>(index++);
  if (has_tchunk) connection->tchunk_piece = static_cast<int>(index++);
  connection->zbase = index;
  const std::size_t total_pieces = index + fields.num_zchunks;
  // One reference per expected piece, plus the posting guard held until the
  // end of this function (it also finishes fully-piggybacked messages).
  connection->remaining.store(total_pieces + 1, std::memory_order_relaxed);

  // Pre-post every receive we already know the size of; completions may
  // land in any order and are routed by tag.
  if (has_main) {
    post_recv_piece(connection, static_cast<std::size_t>(
                                    connection->main_piece),
                    fields.main_size, connection->main);
  }
  if (has_tchunk) {
    post_recv_piece(connection,
                    static_cast<std::size_t>(connection->tchunk_piece),
                    fields.num_zchunks * sizeof(std::uint64_t),
                    connection->tchunk);
  } else if (fields.num_zchunks > 0) {
    // Piggybacked tchunk: zero-copy chunk sizes are already known.
    connection->post_zchunk_recvs(*this);
  }
  connection->drop_ref(*this);
}

void LciParcelport::fastpath_handler(minilci::CqEntry&& entry, void* arg) {
  auto* port = static_cast<LciParcelport*>(arg);
  port->handle_fastpath(entry.rank, std::move(entry.data));
}

void LciParcelport::handle_fastpath(amt::Rank src,
                                    std::vector<std::byte>&& frame) {
  // Both frame kinds share the reserved tag; the leading magic says which
  // arrived (anything else fail-fasts in the decoder below).
  if (amt::peek_frame_magic(frame.data(), frame.size()) == amt::kBatchMagic) {
    handle_batch(src, std::move(frame));
    return;
  }
  // Runs in progress context (the pinned progress thread, or whichever
  // worker won the progress ticket). decode verifies magic + CRC and
  // fail-fasts on corruption, exactly like the header path.
  const amt::WholeParcelView view =
      amt::decode_whole_parcel(frame.data(), frame.size());
  {
    // Fast-path frames share the per-channel sequence space with wire
    // headers, so the same tracker catches duplicates of either kind — a
    // duplicated frame would double-dispatch a parcel.
    HeaderSeqRx& rx = header_seq_rx_[src].value;
    std::lock_guard<common::SpinMutex> guard(rx.mutex);
    if (!rx.tracker.accept(view.fields.seq)) {
      common::integrity_fail("pplci: duplicated whole-parcel frame rank=",
                             context_.rank, " src=", src,
                             " seq=", view.fields.seq,
                             " — a duplicate would double-dispatch a parcel");
    }
  }
  // The arrival buffer is trimmed in place and becomes the main chunk — no
  // second copy of the payload on the dominant (no-zchunk) case.
  amt::InMessage in =
      amt::take_whole_parcel_body(std::move(frame), view, src);
  ctr_delivered_.add();
  context_.deliver(std::move(in));
}

void LciParcelport::handle_batch(amt::Rank src,
                                 std::vector<std::byte>&& frame) {
  // One CRC and ONE per-channel seq check cover the whole frame; each
  // sub-parcel then dispatches through the normal delivery path, so the
  // destination handler returns its admission credit exactly as it would
  // for an unbatched parcel.
  const amt::BatchView view = amt::decode_batch(frame.data(), frame.size());
  {
    HeaderSeqRx& rx = header_seq_rx_[src].value;
    std::lock_guard<common::SpinMutex> guard(rx.mutex);
    if (!rx.tracker.accept(view.fields.seq)) {
      common::integrity_fail("pplci: duplicated batch frame rank=",
                             context_.rank, " src=", src,
                             " seq=", view.fields.seq,
                             " count=", view.fields.count,
                             " — a duplicate would double-dispatch parcels");
    }
  }
  for (std::size_t i = 0; i < view.offsets.size(); ++i) {
    amt::InMessage in = amt::take_batch_entry(frame.data() + view.offsets[i],
                                              view.lengths[i], src);
    ctr_delivered_.add();
    context_.deliver(std::move(in));
  }
}

void LciParcelport::flush_batch(amt::Rank dst,
                                std::vector<amt::Aggregator::Entry>&& batch,
                                amt::Aggregator::FlushReason reason) {
  assert(!batch.empty());
  std::vector<const amt::OutMessage*> msgs;
  msgs.reserve(batch.size());
  for (const amt::Aggregator::Entry& entry : batch) {
    msgs.push_back(&entry.msg);
  }

  // Same allocation + injection discipline as the single-parcel fast path
  // (explicit retry with bounded backoff); the aggregator guarantees the
  // frame fits agg_cap_ <= one medium message.
  std::optional<minilci::PacketBuffer> packet;
  unsigned backoff_round = 0;
  for (;;) {
    packet = device_.try_alloc_packet();
    if (packet) break;
    if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
      try_progress();
    }
    send_backoff(backoff_round);
  }
  const std::uint32_t seq =
      header_seq_tx_[dst].value.fetch_add(1, std::memory_order_relaxed);
  packet->set_size(amt::encode_batch_to(msgs.data(), msgs.size(), seq,
                                        packet->data(), packet->capacity()));
  backoff_round = 0;
  for (;;) {
    const common::Status status =
        protocol_ == amt::ParcelportConfig::Protocol::kPutSendRecv
            ? device_.put_dyn_packet(dst, minilci::kFastpathTag, *packet,
                                     minilci::Comp::none())
            : device_.sendm_packet(dst, minilci::kFastpathTag, *packet,
                                   minilci::Comp::none());
    if (status == common::Status::kOk) break;
    if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
      try_progress();
    }
    send_backoff(backoff_round);
  }

  ctr_agg_batched_.add(batch.size());
  switch (reason) {
    case amt::Aggregator::FlushReason::kSize:
      ctr_agg_flushes_size_.add();
      break;
    case amt::Aggregator::FlushReason::kStall:
      ctr_agg_flushes_stall_.add();
      break;
    case amt::Aggregator::FlushReason::kAge:
      ctr_agg_flushes_age_.add();
      break;
    case amt::Aggregator::FlushReason::kIdle:
    case amt::Aggregator::FlushReason::kFinal:
      ctr_agg_flushes_idle_.add();
      break;
  }
  // Publish the running mean batch size (parcels per frame, x100) through
  // an add/sub-only gauge by applying the delta from the last published
  // value.
  const std::uint64_t parcels = agg_batched_total_.fetch_add(
                                    batch.size(), std::memory_order_relaxed) +
                                batch.size();
  const std::uint64_t flushes =
      agg_flushes_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::int64_t mean =
      static_cast<std::int64_t>(parcels * 100 / flushes);
  const std::int64_t prev =
      agg_mean_prev_.exchange(mean, std::memory_order_relaxed);
  gauge_agg_mean_batch_x100_.add(mean - prev);

  // Local completion of *_packet is synchronous on kOk: every buffered
  // parcel's done callback can fire now (send_queue_depth was added once
  // per parcel at send() entry).
  for (amt::Aggregator::Entry& entry : batch) {
    gauge_send_queue_depth_.sub();
    entry.done();
  }
}

void LciParcelport::dispatch_entry(minilci::CqEntry&& entry) {
  if (entry.user_context == kHeaderRecvCtx) {
    // sr protocol: a header message arrived on the always-posted receive.
    const amt::Rank src = entry.rank;
    handle_header(src, entry.data.data(), entry.data.size());
    device_.recvm(src, kHeaderTag, make_comp(), kHeaderRecvCtx);  // repost
    return;
  }
  auto* connection = reinterpret_cast<Connection*>(entry.user_context);
  assert(connection != nullptr);
  connection->on_completion(*this, std::move(entry));
}

bool LciParcelport::poll_completions() {
  return comp_cq_.poll_batch(16, [this](minilci::CqEntry&& entry) {
           dispatch_entry(std::move(entry));
         }) > 0;
}

bool LciParcelport::poll_remote_puts() {
  return remote_put_cq_.poll_batch(16, [this](minilci::CqEntry&& entry) {
           assert(entry.op == minilci::OpKind::kRemotePut);
           handle_header(entry.rank, entry.data.data(), entry.data.size());
         }) > 0;
}

bool LciParcelport::poll_synchronizers(unsigned worker_index) {
  // The sy-variant analogue of the MPI parcelport's pending-connection
  // polling, sharded so concurrent pollers (and make_comp producers) do not
  // round-trip one global lock. Each worker starts at its own shard and
  // round-robins; a not-ready synchronizer sends the poller to the next
  // shard rather than busy-retesting the same one.
  bool did_work = false;
  int budget = 8;
  for (std::size_t k = 0; k < kSyncShards && budget > 0; ++k) {
    SyncShard& shard =
        sync_shards_[(worker_index + k) & (kSyncShards - 1)].value;
    while (budget > 0) {
      minilci::Synchronizer* sync = nullptr;
      {
        std::lock_guard<common::SpinMutex> guard(shard.mutex);
        if (shard.pending.empty()) break;
        sync = shard.pending.front();
        shard.pending.pop_front();
      }
      --budget;
      std::vector<minilci::CqEntry> entries;
      if (sync->test(&entries)) {
        // test() reset the synchronizer; recycle it before dispatching so
        // the entries' own make_comp calls can already reuse it.
        if (!sync_pool_.try_push(sync)) delete sync;
        for (auto& entry : entries) dispatch_entry(std::move(entry));
        did_work = true;
      } else {
        std::lock_guard<common::SpinMutex> guard(shard.mutex);
        shard.pending.push_back(sync);
        break;  // head of this shard not ready; try the next shard
      }
    }
  }
  return did_work;
}

std::size_t LciParcelport::try_progress(bool* ran) {
  if (progress_threads_ == 0) {
    if (ran != nullptr) *ran = true;
    return device_.progress();
  }
  int available = progress_tickets_.load(std::memory_order_relaxed);
  while (available > 0) {
    if (progress_tickets_.compare_exchange_weak(available, available - 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
      const std::size_t processed = device_.progress();
      progress_tickets_.fetch_add(1, std::memory_order_release);
      if (ran != nullptr) *ran = true;
      return processed;
    }
  }
  // All tickets taken: K threads are already on the NIC; skip cheaply.
  ctr_progress_skips_.add();
  if (ran != nullptr) *ran = false;
  return 0;
}

bool LciParcelport::background_work(unsigned worker_index) {
  if (!started_.load(std::memory_order_relaxed)) return false;
  bool did_work = false;
  if (progress_type_ == amt::ParcelportConfig::ProgressType::kWorker) {
    ProgressBackoff& backoff =
        progress_backoff_[std::min<std::size_t>(worker_index,
                                                progress_backoff_.size() - 1)]
            .value;
    if (backoff.defer > 0 && device_.looks_idle()) {
      --backoff.defer;  // stay off the shared progress path while idle
    } else {
      bool ran = false;
      const std::size_t processed = try_progress(&ran);
      if (processed > 0) {
        backoff.level = 0;
        backoff.defer = 0;
        did_work = true;
      } else if (ran) {
        // An empty poll: back off exponentially (1, 3, 7, ... 63 skips).
        backoff.level = std::min(backoff.level + 1, 6u);
        backoff.defer = (1u << backoff.level) - 1;
      }
    }
  }
  if (protocol_ == amt::ParcelportConfig::Protocol::kPutSendRecv) {
    did_work |= poll_remote_puts();
  }
  if (completion_type_ == amt::ParcelportConfig::CompType::kQueue) {
    did_work |= poll_completions();
  } else {
    did_work |= poll_synchronizers(worker_index);
  }
  did_work |= retry_senders();
  if (aggregator_ && !aggregator_->empty()) {
    // Age trigger first; then, when this worker found nothing else to do,
    // the idle trigger drains partial batches so a dying flood never waits
    // out the full age deadline. The emptiness hint keeps the unloaded
    // polling loop at one relaxed load — no clock read, no buffer scan.
    did_work |= aggregator_->poll(common::now_ns());
    if (!did_work) did_work |= aggregator_->flush_idle();
  }
  return did_work;
}

}  // namespace pplci
