// The LCI parcelport (paper §3.2), implemented over minilci.
//
// Baseline (lci_psr_cq_pin, HPX's default): the header message is assembled
// directly in an LCI-allocated packet buffer and sent with the one-sided
// *dynamic put*, whose target buffer is allocated by the LCI runtime on
// arrival and signalled through a pre-configured remote completion queue.
// Follow-up messages use medium (eager) or long (rendezvous) send/receive,
// each with a *distinct* tag from an atomic counter (LCI gives no in-order
// delivery, so one tag per connection would mis-match).
//
// Follow-ups are *pipelined*: the sender posts every piece eagerly (bounded
// by the configurable pipeline depth; depth 1 reproduces the serialized
// one-op-per-connection behaviour), and the receiver pre-posts every recv as
// soon as the header — and, for zero-copy chunk sizes, the transmission
// chunk — is decoded. Completions may land in any order, so connections
// track an atomic remaining-count and route each completion to its piece
// slot by tag instead of walking stages. Completions land in one completion
// queue; worker background work polls that queue plus the remote-put queue.
// A dedicated progress thread, created through the resource-partitioner shim
// and pinned at core 0, is the only caller of LCI_progress.
//
// The steady-state send path allocates nothing: SenderConnection /
// ReceiverConnection / Synchronizer objects are recycled through bounded
// MPMC freelists (keeping their vector capacities), the header is assembled
// in a pooled LCI packet, and the transmission chunk is encoded in place.
//
// Variants (paper §3.2.2), all runtime-selectable via ParcelportConfig:
//   * protocol   psr | sr   — dynamic-put header vs send/recv header (one
//                             always-posted header receive per peer rank),
//   * progress   pin | mt   — dedicated pinned progress thread vs all worker
//                             threads calling progress when idle,
//   * completion cq | sy    — one completion queue vs per-operation
//                             synchronizers on sharded pending lists
//                             (the dynamic put's remote completion stays a
//                             CQ — the only mechanism LCI's put supports),
//   * send-immediate `_i`   — handled above this layer (parcel queue and
//                             connection cache bypass in amt::Locality),
//   * pipeline   pd<N>      — follow-up pipeline depth (pdinf/absent =
//                             unbounded; also AMTNET_LCI_PIPELINE_DEPTH),
//   * fast path  fp/fpoff   — small-parcel put-with-completion (below),
//   * aggregation agg<N>/aggt<U>/aggoff — adaptive per-destination
//                             coalescing of small parcels (below).
//
// Small-parcel fast path (hpx5 `pwc` style, on by default): when the whole
// message — header, inline data, and every zero-copy chunk payload — fits
// under the fast-path byte cap (fp<N> token / AMTNET_LCI_FASTPATH, capped at
// the eager threshold), send() packs it into ONE pool packet on the reserved
// tag minilci::kFastpathTag and the receive side dispatches it from a
// handler completion fired straight out of progress context: no
// ReceiverConnection, no follow-up tag allocation, no completion-queue round
// trip. Larger messages take the unchanged header + follow-up path
// (counted under pplci/*/fastpath_fallbacks).
//
// Adaptive aggregation (agg<BYTES> token / AMTNET_LCI_AGG, off by default):
// fast-path-sized parcels bound for a *backpressured* destination (admission
// credits outstanding — ParcelportContext::queue_depth) are coalesced in a
// per-destination amt::Aggregator buffer and travel as one multi-parcel
// batch frame on the same reserved tag, amortizing per-message injection
// overhead across the batch. Frames flush on a size cap, an age deadline
// (aggt<USEC> / AMTNET_LCI_AGG_AGE_US), idle background work, or stop();
// the receive side distinguishes batch from whole-parcel frames by leading
// magic, verifies one CRC + one per-channel seq per frame, and dispatches
// every sub-parcel through the normal delivery path so admission credits
// still return from the destination handler. When the destination is idle,
// parcels keep taking the single-parcel fast path unbuffered.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "amt/aggregator.hpp"
#include "amt/parcelport.hpp"
#include "amt/wire_header.hpp"
#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "minilci/device.hpp"
#include "queues/mpmc_queue.hpp"

namespace pplci {

class LciParcelport final : public amt::Parcelport {
 public:
  explicit LciParcelport(const amt::ParcelportContext& context);
  ~LciParcelport() override;

  void start() override;
  void stop() override;
  void send(amt::Rank dst, amt::OutMessage msg,
            common::UniqueFunction<void()> done) override;
  bool background_work(unsigned worker_index) override;

  static constexpr minilci::Tag kHeaderTag = 0;  // sr-protocol headers

  std::uint64_t messages_delivered() const { return ctr_delivered_.value(); }
  /// Effective follow-up pipeline depth (0 = unbounded).
  std::size_t pipeline_depth() const { return pipeline_depth_; }
  /// Effective fast-path frame-size cap in bytes (0 = fast path off).
  std::size_t fastpath_cap() const { return fastpath_cap_; }
  /// Effective batch-frame byte cap (0 = aggregation off).
  std::size_t aggregation_cap() const { return agg_cap_; }

  /// Test hook: positions the follow-up tag counter (e.g. just below the
  /// 32-bit wrap) to exercise alloc_tags' wraparound handling.
  void set_next_tag(std::uint64_t value) {
    next_tag_.store(value, std::memory_order_relaxed);
  }

 private:
  // user_context values in completion entries: either a Connection* or this
  // sentinel marking an sr-protocol header receive.
  static constexpr std::uint64_t kHeaderRecvCtx = 1;

  static constexpr std::size_t kSyncShards = 8;  // power of two

  struct Connection {
    virtual ~Connection() = default;
    /// Reacts to one completion landing for this connection. Completions
    /// arrive in any order (and concurrently, from multiple pollers); the
    /// implementation recycles the connection when the last one lands.
    virtual void on_completion(LciParcelport& port,
                               minilci::CqEntry&& entry) = 0;
  };

  struct SenderConnection final : Connection {
    amt::Rank dst = 0;
    amt::OutMessage msg;
    common::UniqueFunction<void()> done;
    std::vector<std::byte> tchunk_buf;
    std::vector<std::pair<const std::byte*, std::size_t>> pieces;
    std::uint32_t tag_base = 0;
    std::atomic<std::size_t> next_piece{0};  // next unclaimed piece index
    // Live references: one per posted-or-claimed operation (header + every
    // piece) plus one guard held by send() while it still touches the
    // connection. Whoever drops the count to zero finishes and recycles.
    std::atomic<std::size_t> remaining{0};

    /// Posts piece `index`; kRetry leaves it claimable by retry_senders().
    common::Status post_piece(LciParcelport& port, std::size_t index);
    /// Claims and posts the next unposted piece (kRetry pieces go to the
    /// retry queue). Returns false when every piece is already claimed.
    bool post_one(LciParcelport& port);
    void on_completion(LciParcelport& port,
                       minilci::CqEntry&& entry) override;
    void drop_ref(LciParcelport& port);
    void reset();
  };

  struct ReceiverConnection final : Connection {
    amt::Rank src = 0;
    std::uint32_t tag_base = 0;
    amt::WireHeader fields;
    std::vector<std::byte> main;
    std::vector<std::byte> tchunk;
    std::vector<std::vector<std::byte>> zchunks;
    // Follow-up piece layout (matches the sender): [main][tchunk][zchunks].
    // -1 = piece not transferred (piggybacked or absent).
    int main_piece = -1;
    int tchunk_piece = -1;
    std::size_t zbase = 0;  // piece index of zero-copy chunk 0
    // One reference per expected piece plus a posting guard (same protocol
    // as SenderConnection::remaining).
    std::atomic<std::size_t> remaining{0};

    void on_completion(LciParcelport& port,
                       minilci::CqEntry&& entry) override;
    /// Posts all zero-copy chunk receives (sizes from the decoded tchunk).
    /// Called once: from handle_header (piggybacked tchunk) or from the
    /// tchunk piece's completion.
    void post_zchunk_recvs(LciParcelport& port);
    void drop_ref(LciParcelport& port);
    void finish(LciParcelport& port);
    void reset();
  };

  /// Builds the completion object for one operation: the shared CQ in cq
  /// mode, or a pooled synchronizer added to a sharded pending list in sy
  /// mode.
  minilci::Comp make_comp();

  // Connection/synchronizer freelists (paper: "zero allocation on the
  // critical path"). Pop-or-new on acquire; reset-and-push (or delete, when
  // the bounded pool is full) on recycle.
  SenderConnection* acquire_sender();
  ReceiverConnection* acquire_receiver();
  void recycle(SenderConnection* connection);
  void recycle(ReceiverConnection* connection);

  std::uint32_t alloc_tags(std::size_t count);
  void handle_header(amt::Rank src, const std::byte* data, std::size_t size);
  /// Fast-path delivery: fired as a minilci handler completion from progress
  /// context when a whole-parcel frame arrives on kFastpathTag.
  static void fastpath_handler(minilci::CqEntry&& entry, void* arg);
  void handle_fastpath(amt::Rank src, std::vector<std::byte>&& frame);
  /// Batch-frame delivery: one CRC + one seq check, then every sub-parcel
  /// dispatches through the normal delivery path.
  void handle_batch(amt::Rank src, std::vector<std::byte>&& frame);
  /// Aggregator flush callback: encodes the batch into one pool packet,
  /// injects it on the reserved tag, then fires every entry's done callback.
  void flush_batch(amt::Rank dst,
                   std::vector<amt::Aggregator::Entry>&& batch,
                   amt::Aggregator::FlushReason reason);
  void dispatch_entry(minilci::CqEntry&& entry);
  bool poll_completions();
  bool poll_remote_puts();
  bool poll_synchronizers(unsigned worker_index);
  bool retry_senders();
  /// Ticket-bounded Device::progress(): at most `progress_threads_` callers
  /// poll the NIC concurrently; losers skip cheaply (counted under
  /// pplci/*/progress_skips). Returns the packets processed, or 0 on a
  /// skip (`*ran` reports which).
  std::size_t try_progress(bool* ran = nullptr);
  /// Posts one follow-up receive (medium or long, by size) for `piece`.
  void post_recv_piece(ReceiverConnection* connection, std::size_t piece,
                       std::size_t size, std::vector<std::byte>& buf);
  /// Bounded exponential backoff between injection retries; counts every
  /// round in pplci/*/send_retries.
  void send_backoff(unsigned& round);
  void progress_thread_loop();

  const amt::ParcelportContext context_;
  const amt::ParcelportConfig::Protocol protocol_;
  const amt::ParcelportConfig::ProgressType progress_type_;
  const amt::ParcelportConfig::CompType completion_type_;
  const std::size_t max_header_size_;
  const std::size_t pipeline_depth_;  // 0 = unbounded
  const int progress_threads_;        // ticket bound; 0 = unbounded
  const std::size_t fastpath_cap_;    // whole-frame byte cap; 0 = off
  const std::size_t agg_cap_;         // batch-frame byte cap; 0 = agg off

  minilci::CompQueue remote_put_cq_;  // pre-configured remote CQ for puts
  minilci::Device device_;
  minilci::CompQueue comp_cq_;        // cq mode: all op completions

  // Progress tickets (mt mode): a counting try-lock over Device::progress.
  std::atomic<int> progress_tickets_;

  // Per-worker adaptive idle backoff: a worker whose progress calls keep
  // coming back empty skips (2^level - 1) subsequent background progress
  // polls while the device looks idle, so fully idle workers stay off the
  // shared NIC path. Any progress or non-idle hint resets the level.
  struct ProgressBackoff {
    unsigned defer = 0;
    unsigned level = 0;
  };
  std::vector<common::CachePadded<ProgressBackoff>> progress_backoff_;

  // sy mode: per-operation synchronizers on sharded pending lists, polled
  // round-robin starting at the worker's own shard (no global lock).
  struct SyncShard {
    common::SpinMutex mutex;
    std::deque<minilci::Synchronizer*> pending;
  };
  std::array<common::CachePadded<SyncShard>, kSyncShards> sync_shards_;

  // sr mode: one always-posted header receive per peer (reposted by the
  // completion handler; no state needed beyond the sentinel context).

  // Claimed sender pieces that hit resource back-pressure. Each entry keeps
  // its own backoff round so retry pressure is tracked per piece — a fresh
  // piece must not inherit another piece's escalated round.
  struct RetryEntry {
    SenderConnection* connection = nullptr;
    std::size_t piece = 0;
    unsigned round = 0;
  };
  common::SpinMutex retry_mutex_;
  std::deque<RetryEntry> retry_;

  queues::MpmcQueue<SenderConnection*> sender_pool_{1024};
  queues::MpmcQueue<ReceiverConnection*> receiver_pool_{1024};
  queues::MpmcQueue<minilci::Synchronizer*> sync_pool_{4096};

  std::atomic<std::uint64_t> next_tag_{1};  // 0 is the sr header tag

  // End-to-end header integrity: per-destination generation counters stamped
  // into every WireHeader, and per-source trackers that fail fast on a
  // duplicated header (which would double-deliver a parcel).
  std::vector<common::CachePadded<std::atomic<std::uint32_t>>> header_seq_tx_;
  struct HeaderSeqRx {
    common::SpinMutex mutex;
    amt::HeaderSeqTracker tracker;
  };
  std::vector<common::CachePadded<HeaderSeqRx>> header_seq_rx_;

  std::thread progress_thread_;  // pin mode ("rp" resource partitioner)
  std::atomic<bool> progress_stop_{false};

  // Adaptive aggregation engine (null when agg_cap_ == 0).
  std::unique_ptr<amt::Aggregator> aggregator_;
  // Running mean batch size (parcels per flushed frame, x100 for two
  // decimal places) published through a delta-updated gauge; the atomics
  // back the exact arithmetic even when telemetry is compiled out.
  std::atomic<std::uint64_t> agg_batched_total_{0};
  std::atomic<std::uint64_t> agg_flushes_total_{0};
  std::atomic<std::int64_t> agg_mean_prev_{0};

  // Metrics under pplci/loc<rank>/... in the fabric's registry. The send
  // histogram measures send() entry to done-callback firing (only when
  // telemetry timing is enabled; see telemetry::timing_enabled).
  telemetry::Counter& ctr_delivered_;
  telemetry::Counter& ctr_progress_skips_;  // ticket-layer progress skips
  telemetry::Counter& ctr_send_retries_;  // backoff rounds in send()
  telemetry::Counter& ctr_conn_reuses_;   // connections served by the pools
  telemetry::Counter& ctr_conn_allocs_;   // connections newly heap-allocated
  telemetry::Counter& ctr_sync_reuses_;
  telemetry::Counter& ctr_sync_allocs_;
  telemetry::Counter& ctr_fastpath_hits_;       // parcels sent as one frame
  telemetry::Counter& ctr_fastpath_fallbacks_;  // fp on, but the parcel left
                                                // the fast path (over the cap
                                                // or pool exhausted)
  telemetry::Counter& ctr_agg_batched_;       // parcels sent inside batches
  telemetry::Counter& ctr_agg_flushes_size_;  // batch flushes: size cap
  telemetry::Counter& ctr_agg_flushes_stall_;  // batch flushes: the buffer
                                               // absorbed the whole window
  telemetry::Counter& ctr_agg_flushes_age_;   // batch flushes: age deadline
  telemetry::Counter& ctr_agg_flushes_idle_;  // batch flushes: idle/final
  telemetry::Gauge& gauge_agg_mean_batch_x100_;  // parcels per frame x100
  telemetry::Gauge& gauge_pieces_in_flight_;  // posted, not-yet-completed
                                              // follow-up pieces (sender)
  telemetry::Gauge& gauge_send_queue_depth_;  // messages accepted by send(),
                                              // done callback still pending
  telemetry::Histogram& hist_send_ns_;

  std::atomic<bool> started_{false};
};

}  // namespace pplci
