// The LCI parcelport (paper §3.2), implemented over minilci.
//
// Baseline (lci_psr_cq_pin, HPX's default): the header message is assembled
// directly in an LCI-allocated packet buffer and sent with the one-sided
// *dynamic put*, whose target buffer is allocated by the LCI runtime on
// arrival and signalled through a pre-configured remote completion queue.
// Follow-up messages use medium (eager) or long (rendezvous) send/receive,
// each with a *distinct* tag from an atomic counter (LCI gives no in-order
// delivery, so one tag per connection would mis-match). One send/receive is
// outstanding per connection at a time. Completions land in one completion
// queue; worker background work polls that queue plus the remote-put queue.
// A dedicated progress thread, created through the resource-partitioner shim
// and pinned at core 0, is the only caller of LCI_progress.
//
// Variants (paper §3.2.2), all runtime-selectable via ParcelportConfig:
//   * protocol   psr | sr   — dynamic-put header vs send/recv header (one
//                             always-posted header receive per peer rank),
//   * progress   pin | mt   — dedicated pinned progress thread vs all worker
//                             threads calling progress when idle,
//   * completion cq | sy    — one completion queue vs per-operation
//                             synchronizers on a round-robin pending list
//                             (the dynamic put's remote completion stays a
//                             CQ — the only mechanism LCI's put supports),
//   * send-immediate `_i`   — handled above this layer (parcel queue and
//                             connection cache bypass in amt::Locality).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "amt/parcelport.hpp"
#include "amt/wire_header.hpp"
#include "common/spinlock.hpp"
#include "minilci/device.hpp"

namespace pplci {

class LciParcelport final : public amt::Parcelport {
 public:
  explicit LciParcelport(const amt::ParcelportContext& context);
  ~LciParcelport() override;

  void start() override;
  void stop() override;
  void send(amt::Rank dst, amt::OutMessage msg,
            common::UniqueFunction<void()> done) override;
  bool background_work(unsigned worker_index) override;

  static constexpr minilci::Tag kHeaderTag = 0;  // sr-protocol headers

  std::uint64_t messages_delivered() const { return ctr_delivered_.value(); }

 private:
  // user_context values in completion entries: either a Connection* or this
  // sentinel marking an sr-protocol header receive.
  static constexpr std::uint64_t kHeaderRecvCtx = 1;

  struct Connection {
    virtual ~Connection() = default;
    /// Reacts to the completion of this connection's outstanding operation.
    /// Returns true when the connection has finished (caller deletes it).
    virtual bool on_completion(LciParcelport& port,
                               minilci::CqEntry&& entry) = 0;
  };

  struct SenderConnection final : Connection {
    amt::Rank dst = 0;
    amt::OutMessage msg;
    common::UniqueFunction<void()> done;
    std::vector<std::byte> tchunk_buf;
    std::vector<std::pair<const std::byte*, std::size_t>> pieces;
    std::size_t next_piece = 0;  // piece i travels on tag_base + i
    std::uint32_t tag_base = 0;

    /// Posts the current piece; kRetry leaves state unchanged.
    common::Status post_current(LciParcelport& port);
    bool on_completion(LciParcelport& port,
                       minilci::CqEntry&& entry) override;
  };

  struct ReceiverConnection final : Connection {
    amt::Rank src = 0;
    std::uint32_t tag_base = 0;
    amt::WireHeader fields;
    std::vector<std::byte> main;
    std::vector<std::byte> tchunk;
    std::vector<std::uint64_t> zsizes;
    std::vector<std::vector<std::byte>> zchunks;
    enum class Stage : std::uint8_t { kMain, kTchunk, kZchunks, kDone };
    Stage stage = Stage::kMain;
    std::size_t zindex = 0;
    std::size_t piece_index = 0;  // next follow-up tag offset

    /// Posts receives until one is outstanding or the message is complete.
    void post_next(LciParcelport& port);
    bool on_completion(LciParcelport& port,
                       minilci::CqEntry&& entry) override;
    void store_completed(minilci::CqEntry&& entry);
    void finish(LciParcelport& port);
  };

  /// Builds the completion object for one operation: the shared CQ in cq
  /// mode, or a fresh synchronizer added to the pending list in sy mode.
  minilci::Comp make_comp();

  std::uint32_t alloc_tags(std::size_t count);
  void handle_header(amt::Rank src, const std::byte* data, std::size_t size);
  void dispatch_entry(minilci::CqEntry&& entry);
  bool poll_completions();
  bool poll_remote_puts();
  bool poll_synchronizers();
  bool retry_senders();
  void post_recv_piece(ReceiverConnection* connection, std::uint32_t tag,
                       void* buf, std::size_t size);
  void progress_thread_loop();

  const amt::ParcelportContext context_;
  const amt::ParcelportConfig::Protocol protocol_;
  const amt::ParcelportConfig::ProgressType progress_type_;
  const amt::ParcelportConfig::CompType completion_type_;
  const std::size_t max_header_size_;

  minilci::CompQueue remote_put_cq_;  // pre-configured remote CQ for puts
  minilci::Device device_;
  minilci::CompQueue comp_cq_;        // cq mode: all op completions

  // sy mode: per-operation synchronizers, round-robin polled.
  common::SpinMutex sync_mutex_;
  std::deque<std::unique_ptr<minilci::Synchronizer>> pending_syncs_;

  // sr mode: one always-posted header receive per peer (reposted by the
  // completion handler; no state needed beyond the sentinel context).

  // Senders whose current piece hit resource back-pressure.
  common::SpinMutex retry_mutex_;
  std::deque<SenderConnection*> retry_;

  std::atomic<std::uint64_t> next_tag_{1};  // 0 is the sr header tag

  std::thread progress_thread_;  // pin mode ("rp" resource partitioner)
  std::atomic<bool> progress_stop_{false};

  // Metrics under pplci/loc<rank>/... in the fabric's registry. The send
  // histogram measures send() entry to done-callback firing (only when
  // telemetry timing is enabled; see telemetry::timing_enabled).
  telemetry::Counter& ctr_delivered_;
  telemetry::Histogram& hist_send_ns_;

  std::atomic<bool> started_{false};
};

}  // namespace pplci
