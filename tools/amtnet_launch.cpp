// amtnet_launch: SPMD process launcher for the shm fabric backend.
//
//   amtnet_launch -n <P> [options] [--] <binary> [args...]
//
// Spawns P copies of <binary>, one per locality rank, with the environment
// each needs to join the same shm fabric:
//   AMTNET_BACKEND=shm        selects the shared-memory backend
//   AMTNET_SHM_RANK=<r>       the rank this process hosts
//   AMTNET_SHM_RANKS=<P>      the locality count (overrides StackOptions)
//   AMTNET_SHM_SESSION=<s>    the rendezvous namespace (shared by all P)
//   AMTNET_CPU_FIRST/_COUNT   a disjoint core range per rank, so worker and
//                             progress threads of different ranks do not
//                             stack on the same cores
//
// Options:
//   -n <P>             number of ranks (required, >= 1)
//   --session <name>   rendezvous session name (default: generated unique)
//   --cpus-per-rank <k> cores per rank (default: hardware cores / P, min 1)
//   --no-pin           do not export a CPU range (no worker pinning)
//
// Exit status: 0 when every rank exits 0; otherwise the first non-zero
// status (remaining ranks get SIGTERM so a crashed rank fails fast instead
// of wedging the run on a bootstrap timeout).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/affinity.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: amtnet_launch -n <P> [--session NAME] "
               "[--cpus-per-rank K] [--no-pin] [--] <binary> [args...]\n");
}

volatile sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  int ranks = 0;
  std::string session;
  int cpus_per_rank = 0;
  bool pin = true;
  int arg = 1;
  for (; arg < argc; ++arg) {
    const std::string a = argv[arg];
    if (a == "-n" && arg + 1 < argc) {
      ranks = std::atoi(argv[++arg]);
    } else if (a == "--session" && arg + 1 < argc) {
      session = argv[++arg];
    } else if (a == "--cpus-per-rank" && arg + 1 < argc) {
      cpus_per_rank = std::atoi(argv[++arg]);
    } else if (a == "--no-pin") {
      pin = false;
    } else if (a == "--") {
      ++arg;
      break;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "amtnet_launch: unknown option %s\n", a.c_str());
      usage();
      return 2;
    } else {
      break;  // first non-option: the binary
    }
  }
  if (ranks < 1 || arg >= argc) {
    usage();
    return 2;
  }
  if (session.empty()) {
    session = "launch-" + std::to_string(::getpid()) + "-" +
              std::to_string(static_cast<long long>(std::time(nullptr)));
  }
  const unsigned cores = common::hardware_core_count();
  if (cpus_per_rank <= 0) {
    cpus_per_rank = static_cast<int>(cores) / ranks;
    if (cpus_per_rank < 1) cpus_per_rank = 1;
  }

  std::vector<char*> child_argv(argv + arg, argv + argc);
  child_argv.push_back(nullptr);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::vector<pid_t> children(static_cast<std::size_t>(ranks), -1);
  for (int r = 0; r < ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("amtnet_launch: fork");
      for (int k = 0; k < r; ++k) ::kill(children[k], SIGTERM);
      return 1;
    }
    if (pid == 0) {
      ::setenv("AMTNET_BACKEND", "shm", 1);
      ::setenv("AMTNET_SHM_RANK", std::to_string(r).c_str(), 1);
      ::setenv("AMTNET_SHM_RANKS", std::to_string(ranks).c_str(), 1);
      ::setenv("AMTNET_SHM_SESSION", session.c_str(), 1);
      if (pin) {
        const unsigned first =
            (static_cast<unsigned>(r * cpus_per_rank)) % cores;
        ::setenv("AMTNET_CPU_FIRST", std::to_string(first).c_str(), 1);
        ::setenv("AMTNET_CPU_COUNT", std::to_string(cpus_per_rank).c_str(),
                 1);
      }
      ::execvp(child_argv[0], child_argv.data());
      std::perror("amtnet_launch: execvp");
      _exit(127);
    }
    children[static_cast<std::size_t>(r)] = pid;
  }

  int failure = 0;
  int remaining = ranks;
  while (remaining > 0) {
    if (g_signal != 0) {
      for (const pid_t pid : children) {
        if (pid > 0) ::kill(pid, SIGTERM);
      }
      g_signal = 0;
      failure = failure != 0 ? failure : 130;
    }
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;
    }
    --remaining;
    // Forget the reaped pid: the OS may reuse it, so later kill loops must
    // not be able to signal an unrelated process through a stale entry.
    for (pid_t& child : children) {
      if (child == pid) {
        child = -1;
        break;
      }
    }
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
    }
    if (code != 0 && failure == 0) {
      failure = code;
      std::fprintf(stderr, "amtnet_launch: a rank failed with status %d; "
                           "terminating the others\n", code);
      for (const pid_t other : children) {
        if (other > 0 && other != pid) ::kill(other, SIGTERM);
      }
    }
  }
  return failure;
}
